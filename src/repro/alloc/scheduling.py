"""Pre-allocation instruction scheduling (the white phase of Fig. 4).

A pressure-aware list scheduler per basic block: instructions are
topologically reordered, preferring ready instructions that *kill* more
live values than they create (the classic register-pressure heuristic the
paper cites as the inspiration for its coarse bank pressure tracking).

Dependencies respected within a block:

* true (def -> use) and output (def -> def) register dependencies,
* anti dependencies (use -> redefining def),
* program order among memory operations and calls,
* the terminator stays last.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import OpKind
from ..ir.types import Register


@dataclass
class SchedulingResult:
    """Statistics from a scheduling run."""

    blocks_scheduled: int = 0
    instructions_moved: int = 0
    #: True when the new order raised pressure and was rolled back.
    reverted: bool = False


def schedule_function(function: Function, am=None) -> SchedulingResult:
    """Schedule every block of *function* in place.

    The kill-first list heuristic is greedy and can occasionally *raise*
    register pressure; since lowering pressure is this phase's entire
    purpose, the result is compared against the original order and
    reverted wholesale when it is worse ("do no harm").

    The before/after pressure probes read live intervals through *am*
    (created on demand), so the "before" probe is a cache hit whenever an
    earlier phase left valid intervals behind; reorders invalidate all but
    the CFG-level analyses, leaving the cache consistent on return.
    """
    from ..obs import METRICS, TRACER
    from ..passes import CFG_ONLY, AnalysisManager, LiveIntervalsAnalysis

    if am is None:
        am = AnalysisManager(function)

    before_pressure = am.get(LiveIntervalsAnalysis).max_pressure()
    original_orders = [list(block.instructions) for block in function.blocks]

    result = SchedulingResult()
    with TRACER.span(
        "list-schedule", category="stage", function=function.name
    ):
        for block in function.blocks:
            moved = _schedule_block(block)
            result.blocks_scheduled += 1
            result.instructions_moved += moved

    if result.instructions_moved:
        am.invalidate(CFG_ONLY)
        after_pressure = am.get(LiveIntervalsAnalysis).max_pressure()
        if after_pressure > before_pressure:
            for block, order in zip(function.blocks, original_orders):
                block.instructions = order
            result.instructions_moved = 0
            result.reverted = True
            am.invalidate(CFG_ONLY)
    METRICS.inc("scheduling.instructions_moved", result.instructions_moved)
    if result.reverted:
        METRICS.inc("scheduling.reverted")
    return result


def _schedule_block(block: BasicBlock) -> int:
    body = [i for i in block.instructions if not i.is_terminator]
    terminator = block.terminator
    if len(body) < 2:
        return 0

    preds: dict[int, set[int]] = {i: set() for i in range(len(body))}
    succs: dict[int, set[int]] = {i: set() for i in range(len(body))}

    def add_dep(earlier: int, later: int) -> None:
        if earlier != later:
            preds[later].add(earlier)
            succs[earlier].add(later)

    last_def: dict[Register, int] = {}
    last_uses: dict[Register, list[int]] = {}
    last_mem: int | None = None
    for i, instr in enumerate(body):
        for use in instr.reg_uses():
            if use in last_def:
                add_dep(last_def[use], i)  # true dependency
            last_uses.setdefault(use, []).append(i)
        for dst in instr.reg_defs():
            if dst in last_def:
                add_dep(last_def[dst], i)  # output dependency
            for user in last_uses.get(dst, ()):
                add_dep(user, i)  # anti dependency
            last_def[dst] = i
            last_uses[dst] = []
        if instr.kind in (OpKind.LOAD, OpKind.STORE, OpKind.CALL):
            if last_mem is not None:
                add_dep(last_mem, i)  # conservative memory order
            last_mem = i

    # Kill counts: a use kills a value if no later instruction in the block
    # uses it (approximation: count last-use positions).
    final_use: dict[Register, int] = {}
    for i, instr in enumerate(body):
        for use in instr.reg_uses():
            final_use[use] = i

    def priority(i: int) -> tuple:
        instr = body[i]
        kills = sum(1 for u in instr.reg_uses() if final_use.get(u) == i)
        grows = len(instr.reg_defs())
        # Prefer: more kills, fewer new values, then original order.
        return (-(kills - grows), i)

    ready = sorted((i for i in range(len(body)) if not preds[i]), key=priority)
    order: list[int] = []
    pending = {i: set(p) for i, p in preds.items()}
    while ready:
        current = ready.pop(0)
        order.append(current)
        freshly_ready = []
        for succ in succs[current]:
            pending[succ].discard(current)
            if not pending[succ] and succ not in order and succ not in ready:
                freshly_ready.append(succ)
        if freshly_ready:
            ready.extend(freshly_ready)
            ready.sort(key=priority)

    if len(order) != len(body):
        raise AssertionError(f"scheduler dropped instructions in {block.label}")

    moved = sum(1 for position, original in enumerate(order) if position != original)
    new_body = [body[i] for i in order]
    block.instructions = new_body + ([terminator] if terminator is not None else [])
    return moved

"""Pre-allocation instruction scheduling (the white phase of Fig. 4).

A pressure-aware list scheduler per basic block: instructions are
topologically reordered, preferring ready instructions that *kill* more
live values than they create (the classic register-pressure heuristic the
paper cites as the inspiration for its coarse bank pressure tracking).

Dependencies respected within a block:

* true (def -> use) and output (def -> def) register dependencies,
* anti dependencies (use -> redefining def),
* program order among memory operations and calls,
* the terminator stays last.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import OpKind


@dataclass
class SchedulingResult:
    """Statistics from a scheduling run."""

    blocks_scheduled: int = 0
    instructions_moved: int = 0
    #: True when the new order raised pressure and was rolled back.
    reverted: bool = False


def schedule_function(function: Function, am=None) -> SchedulingResult:
    """Schedule every block of *function* in place.

    The kill-first list heuristic is greedy and can occasionally *raise*
    register pressure; since lowering pressure is this phase's entire
    purpose, the result is compared against the original order and
    reverted wholesale when it is worse ("do no harm").

    The before/after pressure probes read live intervals through *am*
    (created on demand), so the "before" probe is a cache hit whenever an
    earlier phase left valid intervals behind; reorders invalidate all but
    the CFG-level analyses, leaving the cache consistent on return.
    """
    from ..ir.flat import enabled as flat_enabled
    from ..obs import METRICS, TRACER
    from ..passes import (
        CFG_ONLY,
        AnalysisManager,
        FlatIRAnalysis,
        LiveIntervalsAnalysis,
    )

    if am is None:
        am = AnalysisManager(function)

    before_pressure = am.get(LiveIntervalsAnalysis).max_pressure()
    # One lowering serves every block: ``ordinal_of`` is keyed by
    # instruction identity, so reordering earlier blocks does not
    # invalidate the CSR rows the later blocks read.
    flat = am.get(FlatIRAnalysis) if flat_enabled() else None
    original_orders = [list(block.instructions) for block in function.blocks]

    result = SchedulingResult()
    with TRACER.span(
        "list-schedule", category="stage", function=function.name
    ):
        for block in function.blocks:
            moved = _schedule_block(block, flat)
            result.blocks_scheduled += 1
            result.instructions_moved += moved

    if result.instructions_moved:
        am.invalidate(CFG_ONLY)
        after_pressure = am.get(LiveIntervalsAnalysis).max_pressure()
        if after_pressure > before_pressure:
            for block, order in zip(function.blocks, original_orders):
                block.instructions = order
            result.instructions_moved = 0
            result.reverted = True
            am.invalidate(CFG_ONLY)
    METRICS.inc("scheduling.instructions_moved", result.instructions_moved)
    if result.reverted:
        METRICS.inc("scheduling.reverted")
    return result


def _schedule_block(block: BasicBlock, flat=None) -> int:
    body = [i for i in block.instructions if not i.is_terminator]
    terminator = block.terminator
    if len(body) < 2:
        return 0

    # Per-index operand views: interned rid slices from the flat CSR when
    # available, register tuples otherwise.  Interning preserves operand
    # equality (equal registers share a rid), and the algorithm below only
    # compares operands for equality, so both views schedule identically.
    if flat is not None:
        ordinal_of = flat.ordinal_of
        use_start, use_ids = flat.use_start, flat.use_ids
        def_start, def_ids = flat.def_start, flat.def_ids
        kinds = flat.kinds
        mem_kinds = (OpKind.LOAD, OpKind.STORE, OpKind.CALL)
        uses_list = []
        defs_list = []
        is_mem = []
        for instr in body:
            o = ordinal_of[id(instr)]
            uses_list.append(use_ids[use_start[o]: use_start[o + 1]])
            defs_list.append(def_ids[def_start[o]: def_start[o + 1]])
            is_mem.append(kinds[o] in mem_kinds)
    else:
        uses_list = [instr.reg_uses() for instr in body]
        defs_list = [instr.reg_defs() for instr in body]
        is_mem = [
            instr.kind in (OpKind.LOAD, OpKind.STORE, OpKind.CALL)
            for instr in body
        ]

    preds: dict[int, set[int]] = {i: set() for i in range(len(body))}
    succs: dict[int, set[int]] = {i: set() for i in range(len(body))}

    def add_dep(earlier: int, later: int) -> None:
        if earlier != later:
            preds[later].add(earlier)
            succs[earlier].add(later)

    last_def: dict = {}
    last_uses: dict = {}
    last_mem: int | None = None
    for i in range(len(body)):
        for use in uses_list[i]:
            if use in last_def:
                add_dep(last_def[use], i)  # true dependency
            last_uses.setdefault(use, []).append(i)
        for dst in defs_list[i]:
            if dst in last_def:
                add_dep(last_def[dst], i)  # output dependency
            for user in last_uses.get(dst, ()):
                add_dep(user, i)  # anti dependency
            last_def[dst] = i
            last_uses[dst] = []
        if is_mem[i]:
            if last_mem is not None:
                add_dep(last_mem, i)  # conservative memory order
            last_mem = i

    # Kill counts: a use kills a value if no later instruction in the block
    # uses it (approximation: count last-use positions).
    final_use: dict = {}
    for i in range(len(body)):
        for use in uses_list[i]:
            final_use[use] = i

    def priority(i: int) -> tuple:
        kills = sum(1 for u in uses_list[i] if final_use.get(u) == i)
        grows = len(defs_list[i])
        # Prefer: more kills, fewer new values, then original order.
        return (-(kills - grows), i)

    ready = sorted((i for i in range(len(body)) if not preds[i]), key=priority)
    in_ready = set(ready)
    placed: set[int] = set()
    order: list[int] = []
    pending = {i: set(p) for i, p in preds.items()}
    while ready:
        current = ready.pop(0)
        in_ready.discard(current)
        placed.add(current)
        order.append(current)
        freshly_ready = []
        for succ in succs[current]:
            pending[succ].discard(current)
            if not pending[succ] and succ not in placed and succ not in in_ready:
                freshly_ready.append(succ)
        if freshly_ready:
            ready.extend(freshly_ready)
            in_ready.update(freshly_ready)
            ready.sort(key=priority)

    if len(order) != len(body):
        raise AssertionError(f"scheduler dropped instructions in {block.label}")

    moved = sum(1 for position, original in enumerate(order) if position != original)
    new_body = [body[i] for i in order]
    block.instructions = new_body + ([terminator] if terminator is not None else [])
    return moved

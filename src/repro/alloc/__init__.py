"""Register allocation substrate: the greedy allocator the paper extends,
coalescing and pre-allocation scheduling phases, spilling and live-range
splitting machinery, and two classic baselines (linear scan,
Chaitin–Briggs) for ablation comparisons.
"""

from .base import (
    AllocationError,
    AllocationPolicy,
    AllocationResult,
    NaturalOrderPolicy,
)
from .chaitin import ChaitinBriggsAllocator
from .coalescing import CoalescingResult, coalesce
from .greedy import GreedyAllocator
from .linear_scan import LinearScanAllocator
from .pbqp import PbqpAllocator
from .scheduling import SchedulingResult, schedule_function
from .verify import AllocationVerificationError, verify_allocation

__all__ = [
    "AllocationError",
    "AllocationPolicy",
    "AllocationResult",
    "ChaitinBriggsAllocator",
    "CoalescingResult",
    "GreedyAllocator",
    "LinearScanAllocator",
    "PbqpAllocator",
    "NaturalOrderPolicy",
    "SchedulingResult",
    "coalesce",
    "schedule_function",
    "AllocationVerificationError",
    "verify_allocation",
]

"""The greedy register allocator (miniature of LLVM's RAGreedy).

Priority-queue allocation over live intervals with the classic stage
cascade per interval:

1. **Assign** — first candidate physical register whose assigned intervals
   do not overlap.
2. **Evict** — find a candidate whose conflicting intervals all weigh less
   than the current one; evict and re-queue them.
3. **Split** — region-split around the hottest use loop
   (:mod:`repro.alloc.splitter`); children are re-queued.
4. **Spill** — decompose into tiny per-instruction intervals
   (:mod:`repro.alloc.spiller`) that are re-queued with infinite weight.

Bank strategies (non / bcr / bpc) plug in through
:class:`repro.alloc.base.AllocationPolicy`, which orders and filters the
candidate registers per virtual register — exactly the surface the paper
uses to integrate bank assignment into LLVM's allocator.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from ..analysis.intervals import LiveInterval
from ..banks.register_file import RegisterFile
from ..ir import instruction as ins
from ..ir.flat import enabled as flat_enabled
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.types import FP, PhysicalRegister, RegClass, VirtualRegister
from ..obs import AUDIT, METRICS, TRACER
from ..passes import (
    CFG_ONLY,
    AnalysisManager,
    CFGAnalysis,
    ConflictCostAnalysis,
    LiveIntervalsAnalysis,
    LoopInfoAnalysis,
    SlotIndexesAnalysis,
)
from .base import AllocationError, AllocationPolicy, AllocationResult, NaturalOrderPolicy, PhysRegState
from .spiller import SpillPlan, spill_interval
from .splitter import CopyAction, try_region_split


@dataclass
class _QueueEntry:
    priority: tuple
    interval: LiveInterval

    def __lt__(self, other: "_QueueEntry") -> bool:
        return self.priority < other.priority


@dataclass
class GreedyAllocator:
    """Configurable greedy allocator for one bankable register class.

    Attributes:
        register_file: The target banked register file.
        policy: Candidate ordering/filtering strategy (default: "non").
        regclass: The register class being allocated.
        enable_split: Whether stage 3 (region splitting) is available.
        max_evictions_per_vreg: Bound on evict-requeue cycles per register;
            beyond it the interval must split or spill (loop safety).
    """

    register_file: RegisterFile
    policy: AllocationPolicy | None = None
    regclass: RegClass = FP
    enable_split: bool = True
    max_evictions_per_vreg: int = 4

    # Populated per-run (the allocator object is reusable across functions).
    function: Function = field(default=None, repr=False)
    #: The analysis manager of the current run; policies may consume
    #: cached analyses through it (see :class:`repro.prescount.bcr.BcrPolicy`).
    analyses: AnalysisManager | None = field(default=None, repr=False)
    _intervals: dict[VirtualRegister, LiveInterval] = field(default_factory=dict, repr=False)
    _assignment: dict[VirtualRegister, PhysicalRegister] = field(default_factory=dict, repr=False)
    _preg_state: dict[PhysicalRegister, PhysRegState] = field(default_factory=dict, repr=False)
    _eviction_count: dict[VirtualRegister, int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # AllocatorContext protocol (what policies may observe)
    # ------------------------------------------------------------------
    def current_assignment(self) -> dict[VirtualRegister, PhysicalRegister]:
        return self._assignment

    def interval_of(self, vreg: VirtualRegister) -> LiveInterval:
        return self._intervals[vreg]

    # ------------------------------------------------------------------
    def run(
        self,
        function: Function,
        *,
        clone: bool = True,
        am: AnalysisManager | None = None,
    ) -> AllocationResult:
        """Allocate *function*; returns the rewritten function and metrics.

        With ``clone=True`` (default) the input function is untouched and
        the result holds a rewritten deep copy, so several methods can be
        compared on the same source IR.

        All analyses come from *am* (one is created when absent or when it
        is bound to a different function than the one being allocated), so
        a pipeline-supplied manager turns the CFG/loop/interval/cost
        builds below into cache hits.  Allocation rewrites operands and
        inserts spill/split code but never touches the block graph, so the
        manager keeps its CFG-level analyses afterwards.
        """
        if clone:
            function = function.clone()
        if am is None or am.function is not function:
            am = AnalysisManager(function)
        self.function = function
        self.analyses = am
        policy = self.policy if self.policy is not None else NaturalOrderPolicy()

        loop_info = am.get(LoopInfoAnalysis)
        slots = am.get(SlotIndexesAnalysis)
        live = am.get(LiveIntervalsAnalysis)
        cost_model = am.get(ConflictCostAnalysis, regclass=self.regclass)

        self._intervals = {}
        self._assignment = {}
        self._eviction_count = {}
        # Resolved once per run: every overlap probe below becomes a
        # bitmask AND instead of a segment-list walk.
        use_masks = flat_enabled()
        self._preg_state = {
            preg: PhysRegState(preg, use_masks=use_masks)
            for preg in self.register_file.registers()
        }
        all_registers = self.register_file.registers()

        queue: list[_QueueEntry] = []
        for interval in live.vreg_intervals(self.regclass):
            vreg = interval.reg
            interval.weight = cost_model.spill_weight(vreg, interval.size)
            self._intervals[vreg] = interval
            heapq.heappush(queue, _QueueEntry(self._priority(interval), interval))

        policy.setup(self)

        result = AllocationResult(function)
        spill_plan = SpillPlan()
        split_rewrites: dict[int, dict[VirtualRegister, VirtualRegister]] = {}
        split_copies: list[CopyAction] = []
        split_generated: set[VirtualRegister] = set()
        split_parent: dict[VirtualRegister, VirtualRegister] = {}

        retired: set[VirtualRegister] = set()
        while queue:
            interval = heapq.heappop(queue).interval
            vreg = interval.reg
            if self._assignment.get(vreg) is not None or vreg in retired:
                continue  # stale entry (re-pushed and already handled)
            is_tiny = math.isinf(interval.weight)

            candidates = list(policy.order(vreg, interval))
            if not candidates:
                candidates = all_registers

            preg = self._try_assign(interval, candidates)
            if preg is None and self._can_evict(vreg):
                preg = self._try_evict(interval, candidates, queue, result)
            if preg is None and is_tiny and len(candidates) < len(all_registers):
                # Reloads/stores must land somewhere; lift policy limits.
                preg = self._try_assign(interval, all_registers)
                if preg is None:
                    preg = self._try_evict(interval, all_registers, queue, result)
            if preg is not None:
                self._assign(interval, preg)
                policy.on_assign(vreg, preg)
                continue

            if (
                self.enable_split
                and not is_tiny
                and vreg not in split_generated
            ):
                split = try_region_split(function, slots, loop_info, interval)
                if split is not None:
                    for instr_id, mapping in split.rewrites.items():
                        split_rewrites.setdefault(instr_id, {}).update(mapping)
                    split_copies.extend(split.copies)
                    for child in split.children:
                        split_generated.add(child.reg)
                        split_parent[child.reg] = split_parent.get(vreg, vreg)
                        self._intervals[child.reg] = child
                        heapq.heappush(
                            queue, _QueueEntry(self._priority(child), child)
                        )
                    self._notify_split(policy, vreg, split)
                    retired.add(vreg)
                    continue

            if is_tiny:
                raise AllocationError(
                    f"{function.name}: cannot place spill interval {interval!r}; "
                    f"register file too small for one instruction's operands"
                )
            origin = split_parent.get(vreg, vreg)
            if AUDIT.enabled:
                AUDIT.record(
                    function.name,
                    vreg.name,
                    "spill",
                    weight=interval.weight,
                    span=interval.span,
                    origin=origin.name,
                    evictions_used=self._eviction_count.get(vreg, 0),
                )
            result.spilled.add(origin)
            retired.add(vreg)
            # All split siblings of one original vreg share a single stack
            # slot: they hold the same logical value, and a boundary copy
            # between two spilled siblings then needs no code at all.
            shared_slot = spill_plan.slot_of_vreg.get(origin)
            if shared_slot is None:
                shared_slot = spill_plan.new_slot()
                spill_plan.slot_of_vreg[origin] = shared_slot
            spill_plan.slot_of_vreg[vreg] = shared_slot
            for tiny in spill_interval(function, slots, interval, spill_plan):
                self._intervals[tiny.reg] = tiny
                heapq.heappush(queue, _QueueEntry(self._priority(tiny), tiny))

        result.assignment = dict(self._assignment)
        with TRACER.span("materialize", category="stage", function=function.name):
            result.copies_inserted += self._materialize(
                function, spill_plan, split_rewrites, split_copies, result
            )
        result.stats["bank_histogram"] = self._bank_histogram()
        result.stats["max_pressure"] = live.max_pressure(self.regclass)
        if METRICS.enabled:
            METRICS.inc("alloc.spilled_vregs", len(result.spilled))
            METRICS.inc("alloc.spill_instructions", result.spill_instructions)
            METRICS.inc("alloc.evictions", result.evictions)
            METRICS.inc("alloc.copies_inserted", result.copies_inserted)
            METRICS.inc("alloc.split_children", len(split_generated))
            METRICS.observe(
                "alloc.max_pressure", result.stats["max_pressure"]
            )
        # Materialization rewrote operands and inserted spill/split code;
        # block labels, terminators, and loop structure are untouched.
        am.invalidate(CFG_ONLY)
        return result

    # ------------------------------------------------------------------
    # Queue and stage helpers
    # ------------------------------------------------------------------
    def _priority(self, interval: LiveInterval) -> tuple:
        """Heap key: tiny intervals first, then larger spans first."""
        tiny = 0 if math.isinf(interval.weight) else 1
        reg = interval.reg
        vid = reg.vid if isinstance(reg, VirtualRegister) else -1
        return (tiny, -interval.span, vid)

    def _can_evict(self, vreg: VirtualRegister) -> bool:
        return self._eviction_count.get(vreg, 0) < self.max_evictions_per_vreg

    def _try_assign(
        self, interval: LiveInterval, candidates: list[PhysicalRegister]
    ) -> PhysicalRegister | None:
        for preg in candidates:
            if self._preg_state[preg].is_free_for(interval):
                return preg
        return None

    def _try_evict(
        self,
        interval: LiveInterval,
        candidates: list[PhysicalRegister],
        queue: list,
        result: AllocationResult,
    ) -> PhysicalRegister | None:
        """Find the candidate whose conflicts are cheapest to evict."""
        best_preg = None
        best_score = None
        for preg in candidates:
            conflicts = self._preg_state[preg].conflicts_with(interval)
            if any(c.weight >= interval.weight for c in conflicts):
                continue
            score = (max(c.weight for c in conflicts), len(conflicts))
            if best_score is None or score < best_score:
                best_preg, best_score = preg, score
        if best_preg is None:
            return None
        for conflict in list(self._preg_state[best_preg].conflicts_with(interval)):
            self._unassign(conflict, best_preg)
            victim = conflict.reg
            self._eviction_count[victim] = self._eviction_count.get(victim, 0) + 1
            result.evictions += 1
            heapq.heappush(queue, _QueueEntry(self._priority(conflict), conflict))
        return best_preg

    def _assign(self, interval: LiveInterval, preg: PhysicalRegister) -> None:
        self._preg_state[preg].add(interval)
        self._assignment[interval.reg] = preg

    def _unassign(self, interval: LiveInterval, preg: PhysicalRegister) -> None:
        self._preg_state[preg].remove(interval)
        del self._assignment[interval.reg]
        policy = self.policy
        if policy is not None:
            policy.on_unassign(interval.reg, preg)

    def _notify_split(self, policy: AllocationPolicy, parent: VirtualRegister, split) -> None:
        """Tell the policy about split-generated registers so it can
        propagate bank/subgroup decisions (Algorithm 2's first branch)."""
        hook = getattr(policy, "on_split", None)
        if hook is not None:
            hook(parent, [child.reg for child in split.children])

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def _materialize(
        self,
        function: Function,
        spill_plan: SpillPlan,
        split_rewrites: dict[int, dict],
        split_copies: list[CopyAction],
        result: AllocationResult,
    ) -> int:
        """Apply all rewrites and insert spill/split code.  Returns the
        number of copy instructions inserted."""
        assignment = self._assignment
        reloads: dict[int, list[Instruction]] = {}
        stores: dict[int, list[Instruction]] = {}
        for action in spill_plan.actions:
            target = assignment.get(action.tiny, action.tiny)
            if action.kind == "reload":
                reloads.setdefault(action.instr_id, []).append(
                    ins.load(target, spill_slot=action.slot_id, spill=True)
                )
            else:
                stores.setdefault(action.instr_id, []).append(
                    ins.store(target, spill_slot=action.slot_id, spill=True)
                )
            result.spill_instructions += 1

        if flat_enabled():
            self._materialize_fast(
                function, spill_plan, split_rewrites, reloads, stores
            )
        else:
            for block in function.blocks:
                new_instructions: list[Instruction] = []
                for instr in block.instructions:
                    rewritten = instr
                    split_map = split_rewrites.get(id(instr))
                    if split_map:
                        rewritten = rewritten.rewrite(split_map)
                    spill_map = spill_plan.rewrites.get(id(instr))
                    if spill_map:
                        rewritten = rewritten.rewrite(spill_map)
                    rewritten = rewritten.rewrite(assignment)
                    new_instructions.extend(reloads.get(id(instr), []))
                    new_instructions.append(rewritten)
                    new_instructions.extend(stores.get(id(instr), []))
                block.instructions = new_instructions

        return self._insert_split_copies(function, split_copies, spill_plan, result)

    def _materialize_fast(
        self,
        function: Function,
        spill_plan: SpillPlan,
        split_rewrites: dict[int, dict],
        reloads: dict[int, list[Instruction]],
        stores: dict[int, list[Instruction]],
    ) -> None:
        """Single-pass rewrite: the split, spill, and assignment maps are
        composed per operand, so each instruction is reconstructed once
        instead of up to three times.  Operand-wise composition of the
        three lookups is exactly the chained ``rewrite`` sequence, and the
        single :class:`Instruction` construction shares ``attrs`` just as
        ``Instruction.rewrite`` does."""
        assignment = self._assignment
        is_reg = ins.is_reg
        spill_rewrites = spill_plan.rewrites
        for block in function.blocks:
            new_instructions: list[Instruction] = []
            for instr in block.instructions:
                key = id(instr)
                split_map = split_rewrites.get(key)
                spill_map = spill_rewrites.get(key)
                if split_map or spill_map:
                    def look(r, _sp=split_map, _sl=spill_map):
                        if _sp:
                            r = _sp.get(r, r)
                        if _sl:
                            r = _sl.get(r, r)
                        return assignment.get(r, r)
                else:
                    look = lambda r: assignment.get(r, r)  # noqa: E731
                rewritten = Instruction(
                    instr.opcode,
                    instr.kind,
                    tuple(look(d) for d in instr.defs),
                    tuple(look(u) if is_reg(u) else u for u in instr.uses),
                    instr.attrs,
                )
                pre = reloads.get(key)
                if pre:
                    new_instructions.extend(pre)
                new_instructions.append(rewritten)
                post = stores.get(key)
                if post:
                    new_instructions.extend(post)
            block.instructions = new_instructions

    def _insert_split_copies(
        self,
        function: Function,
        split_copies: list[CopyAction],
        spill_plan: SpillPlan,
        result: AllocationResult,
    ) -> int:
        """Insert boundary copies from region splits; spilled endpoints
        degrade into spill loads/stores against the parent's stack slot."""
        inserted = 0
        for action in split_copies:
            dst = self._assignment.get(action.dst)
            src = self._assignment.get(action.src)
            block = function.block(action.block_label)
            index = 0
            if action.position == "end":
                index = len(block.instructions)
                if block.terminator is not None:
                    index -= 1
            if dst is not None and src is not None:
                if dst == src:
                    continue  # same register: coalesced for free
                block.insert(index, ins.copy(dst, src, split_copy=True))
                inserted += 1
            elif dst is not None and src is None:
                slot = spill_plan.slot_of_vreg.get(action.src)
                block.insert(index, ins.load(dst, spill_slot=slot, spill=True))
                result.spill_instructions += 1
            elif dst is None and src is not None:
                slot = spill_plan.slot_of_vreg.get(action.dst)
                block.insert(index, ins.store(src, spill_slot=slot, spill=True))
                result.spill_instructions += 1
            # Both spilled: value already in memory; nothing to emit.
        return inserted

    def _bank_histogram(self) -> list[int]:
        histogram = [0] * self.register_file.num_banks
        for preg in self._assignment.values():
            histogram[self.register_file.bank_of(preg)] += 1
        return histogram

"""PBQP register allocation (Scholz–Eckstein), with bank-aware costs.

The paper's related work singles out Partitioned Boolean Quadratic
Programming as *the* framework for irregular register constraints
(Scholz & Eckstein [31], Hames & Scholz [32]; LLVM ships a PBQP
allocator [34]), and its conclusion proposes "investigating the
incorporation of PresCount with other RA methods".  This module does
exactly that incorporation: bank conflicts become quadratic cost terms,
so one solver trades off spilling against bank conflicts globally.

Model per function:

* one PBQP *node* per virtual register; its domain is
  ``[spill] + allowed physical registers``;
* node cost vector: ``spill_weight`` for the spill option, 0 for
  registers (plus a small bank-preference nudge when a
  :class:`~repro.banks.assignment.BankAssignment` is supplied);
* an *interference edge* between overlapping vregs: infinite cost for
  picking the same register;
* a *conflict edge* between co-read operands (the RCG): ``Cost_I`` for
  picking same-bank registers — the PresCount objective folded into the
  PBQP matrix.

Solved with the classic heuristic reduction: degree-0/1/2 nodes are
eliminated exactly (R0/R1/R2), higher-degree nodes heuristically (RN),
then selections back-propagate.  This is the textbook algorithm; no
attempt is made at optimality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.conflict_graph import ConflictGraph
from ..analysis.cost import ConflictCostModel
from ..analysis.intervals import LiveIntervals
from ..analysis.interference import InterferenceGraph
from ..analysis.slots import SlotIndexes
from ..banks.assignment import BankAssignment
from ..banks.register_file import RegisterFile
from ..ir.function import Function
from ..ir.loops import LoopInfo
from ..ir.types import FP, PhysicalRegister, RegClass, VirtualRegister
from .base import AllocationError, AllocationResult
from .linear_scan import _materialize_linear
from .spiller import SpillPlan, spill_interval

#: Cost standing in for "forbidden" (same register on interfering vregs).
INFINITY = 1e18


@dataclass
class _Node:
    vreg: VirtualRegister
    options: list[PhysicalRegister | None]  # None = spill
    costs: np.ndarray  # vector, len(options)
    edges: dict[VirtualRegister, np.ndarray] = field(default_factory=dict)
    # matrix[i][j]: cost of (self=options[i], other=their options[j])


@dataclass
class PbqpAllocator:
    """Bank-aware PBQP register allocator.

    Attributes:
        register_file: Target banked register file.
        bank_conflict_weight: Scale applied to RCG edge costs in the
            quadratic terms (0 disables bank awareness entirely —
            the plain PBQP baseline).
        bank_assignment: Optional PresCount assignment; when given, each
            register choice outside the assigned bank pays a small linear
            nudge, integrating Algorithm 1's decision into the solve.
        max_registers_per_node: Domain cap; large files are truncated to
            the first N registers of each bank (round-robin) to keep the
            matrices small.  Plenty for the function sizes generated here.
    """

    register_file: RegisterFile
    regclass: RegClass = FP
    bank_conflict_weight: float = 1.0
    bank_assignment: BankAssignment | None = None
    max_registers_per_node: int = 64
    spill_rounds: int = 8

    # ------------------------------------------------------------------
    def run(self, function: Function, *, clone: bool = True) -> AllocationResult:
        if clone:
            function = function.clone()
        result = AllocationResult(function)
        plan = SpillPlan()
        #: Reload/store vregs from earlier rounds: spilling them again
        #: would never converge, so their spill option costs infinity.
        unspillable: set[VirtualRegister] = set()

        for _round in range(self.spill_rounds):
            slots = SlotIndexes.build(function)
            live = LiveIntervals.build(function, slots=slots)
            solution, spill_choices = self._solve_once(function, live, unspillable)
            if not spill_choices:
                result.assignment.update(solution)
                result.spill_instructions += _materialize_linear(
                    function, result.assignment, plan
                )
                return result
            for vreg in spill_choices:
                if vreg in plan.slot_of_vreg:
                    raise AllocationError(
                        f"pbqp: {vreg!r} spilled twice in {function.name}"
                    )
                result.spilled.add(vreg)
                for tiny in spill_interval(function, slots, live.of(vreg), plan):
                    unspillable.add(tiny.reg)
            self._apply_spills(function, plan, result)
        raise AllocationError(
            f"pbqp: did not converge within {self.spill_rounds} spill rounds"
        )

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def _domain(self) -> list[PhysicalRegister]:
        registers = self.register_file.registers()
        if len(registers) <= self.max_registers_per_node:
            return registers
        # Round-robin across banks so every bank stays represented.
        by_bank = [
            self.register_file.registers_in_bank(b)
            for b in range(self.register_file.num_banks)
        ]
        picked: list[PhysicalRegister] = []
        index = 0
        while len(picked) < self.max_registers_per_node:
            for bank_regs in by_bank:
                if index < len(bank_regs):
                    picked.append(bank_regs[index])
                    if len(picked) == self.max_registers_per_node:
                        break
            index += 1
        return picked

    def _build_nodes(
        self,
        function: Function,
        live: LiveIntervals,
        unspillable: set[VirtualRegister] = frozenset(),
    ) -> dict[VirtualRegister, _Node]:
        loop_info = LoopInfo.build(function)
        cost_model = ConflictCostModel.build(function, loop_info, regclass=self.regclass)
        rig = InterferenceGraph.build(function, live, self.regclass)
        rcg = ConflictGraph.build(function, cost_model, self.regclass)
        domain = self._domain()

        nodes: dict[VirtualRegister, _Node] = {}
        for interval in live.vreg_intervals(self.regclass):
            vreg = interval.reg
            options: list[PhysicalRegister | None] = [None] + list(domain)
            costs = np.zeros(len(options))
            if vreg in unspillable:
                costs[0] = INFINITY
            else:
                # Spilling costs ~2 cycles (store+reload) per dynamic
                # access — "register spillings are commonly regarded as
                # more expensive than bank conflicts" (§I), so the spill
                # option must outprice the ~1-cycle conflict terms.
                costs[0] = max(1e-3, 2.0 * cost_model.access_cost(vreg))
            if self.bank_assignment is not None:
                wanted = self.bank_assignment.bank_of(vreg)
                if wanted is not None:
                    for i, option in enumerate(options[1:], start=1):
                        if self.register_file.bank_of(option) != wanted:
                            costs[i] += 1e-3
            nodes[vreg] = _Node(vreg, options, costs)

        # Interference edges: same-register forbidden.
        for a in rig.nodes():
            if a not in nodes:
                continue
            for b in rig.neighbors(a):
                if b not in nodes or b.vid <= a.vid:
                    continue
                matrix = self._interference_matrix(nodes[a], nodes[b])
                self._add_edge(nodes, a, b, matrix)

        # Conflict edges: same-bank penalized by Cost_I (the PresCount
        # objective as quadratic terms).
        if self.bank_conflict_weight > 0:
            for key, cost in rcg.edge_cost.items():
                a, b = tuple(key)
                if a not in nodes or b not in nodes:
                    continue
                matrix = self._bank_matrix(nodes[a], nodes[b]) * (
                    cost * self.bank_conflict_weight
                )
                self._add_edge(nodes, a, b, matrix)
        return nodes

    def _interference_matrix(self, a: _Node, b: _Node) -> np.ndarray:
        matrix = np.zeros((len(a.options), len(b.options)))
        for i, oa in enumerate(a.options):
            for j, ob in enumerate(b.options):
                if oa is not None and oa == ob:
                    matrix[i][j] = INFINITY
        return matrix

    def _bank_matrix(self, a: _Node, b: _Node) -> np.ndarray:
        matrix = np.zeros((len(a.options), len(b.options)))
        for i, oa in enumerate(a.options):
            if oa is None:
                continue
            bank_a = self.register_file.bank_of(oa)
            for j, ob in enumerate(b.options):
                if ob is None:
                    continue
                if self.register_file.bank_of(ob) == bank_a:
                    matrix[i][j] = 1.0
        return matrix

    @staticmethod
    def _add_edge(nodes, a, b, matrix) -> None:
        node_a, node_b = nodes[a], nodes[b]
        if b in node_a.edges:
            node_a.edges[b] = node_a.edges[b] + matrix
            node_b.edges[a] = node_b.edges[a] + matrix.T
        else:
            node_a.edges[b] = matrix
            node_b.edges[a] = matrix.T

    # ------------------------------------------------------------------
    # Heuristic PBQP solve
    # ------------------------------------------------------------------
    def _solve_once(self, function, live, unspillable=frozenset()):
        nodes = self._build_nodes(function, live, unspillable)
        order: list[VirtualRegister] = []
        alive = dict(nodes)

        def degree(v):
            return sum(1 for u in nodes[v].edges if u in alive)

        while alive:
            # R0: independent nodes drop immediately.
            zero = [v for v in alive if degree(v) == 0]
            for v in zero:
                order.append(v)
                del alive[v]
            if not alive:
                break
            # R1: degree-1 elimination (exact).
            one = next((v for v in alive if degree(v) == 1), None)
            if one is not None:
                self._reduce_r1(nodes, alive, one)
                order.append(one)
                del alive[one]
                continue
            # RN: heuristically eliminate the max-degree node.
            victim = max(alive, key=lambda v: (degree(v), v.vid))
            order.append(victim)
            del alive[victim]

        # Back-propagate selections in reverse elimination order.
        selection: dict[VirtualRegister, int] = {}
        for vreg in reversed(order):
            node = nodes[vreg]
            totals = node.costs.copy()
            for other, matrix in node.edges.items():
                if other in selection:
                    totals = totals + matrix[:, selection[other]]
            selection[vreg] = int(np.argmin(totals))

        assignment: dict[VirtualRegister, PhysicalRegister] = {}
        spills: list[VirtualRegister] = []
        for vreg, index in selection.items():
            option = nodes[vreg].options[index]
            if option is None:
                spills.append(vreg)
            else:
                assignment[vreg] = option
        # Safety: verify no interference violation slipped through the
        # heuristic (can happen with RN); demote violators to spills.
        rig = InterferenceGraph.build(function, live, self.regclass)
        for a in list(assignment):
            for b in rig.neighbors(a):
                if b in assignment and assignment[a] == assignment[b]:
                    weight_a = nodes[a].costs[0]
                    weight_b = nodes[b].costs[0]
                    victim = a if weight_a <= weight_b else b
                    if victim in unspillable:
                        victim = b if victim is a else a
                    if victim in assignment and victim not in unspillable:
                        del assignment[victim]
                        spills.append(victim)
        return assignment, spills

    def _reduce_r1(self, nodes, alive, vreg) -> None:
        """Fold a degree-1 node's best responses into its neighbor."""
        node = nodes[vreg]
        neighbor = next(u for u in node.edges if u in alive)
        matrix = node.edges[neighbor]  # shape: |v| x |n|
        folded = (node.costs[:, None] + matrix).min(axis=0)
        nodes[neighbor].costs = nodes[neighbor].costs + folded

    def _apply_spills(self, function, plan, result) -> None:
        """Insert spill code between rounds (re-analyzed next round)."""
        from ..ir import instruction as ins
        from ..ir.instruction import Instruction

        reloads: dict[int, list[Instruction]] = {}
        stores: dict[int, list[Instruction]] = {}
        for action in plan.actions:
            if action.kind == "reload":
                reloads.setdefault(action.instr_id, []).append(
                    ins.load(action.tiny, spill_slot=action.slot_id, spill=True)
                )
            else:
                stores.setdefault(action.instr_id, []).append(
                    ins.store(action.tiny, spill_slot=action.slot_id, spill=True)
                )
        result.spill_instructions += len(plan.actions)
        for block in function.blocks:
            new_instructions = []
            for instr in block.instructions:
                mapping = plan.rewrites.get(id(instr))
                rewritten = instr.rewrite(mapping) if mapping else instr
                new_instructions.extend(reloads.get(id(instr), []))
                new_instructions.append(rewritten)
                new_instructions.extend(stores.get(id(instr), []))
            block.instructions = new_instructions
        plan.actions.clear()
        plan.rewrites.clear()

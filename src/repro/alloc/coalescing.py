"""Register coalescing: remove copies whose endpoints do not interfere.

This is the standard LLVM phase that runs before the bank assignment in
the Fig. 4 pipeline.  Its position matters for the paper: SDG-based
subgroup splitting inserts copies *after* coalescing precisely so they do
not get merged away again.

Implementation: iterate to a fixed point; in each round, find copy
instructions ``dst = mov src`` between virtual registers of one class
whose live intervals do not overlap, merge ``dst`` into ``src`` (rewriting
the whole function), and drop the copy.  Conservative and simple — exactly
what the reproduction needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.flat import enabled as flat_enabled
from ..ir.function import Function
from ..ir.instruction import OpKind
from ..ir.types import RegClass, VirtualRegister
from ..obs import METRICS, TRACER
from ..passes import CFG_ONLY, AnalysisManager, FlatIRAnalysis, LiveIntervalsAnalysis


@dataclass
class CoalescingResult:
    """Outcome of a coalescing run."""

    copies_removed: int = 0
    rounds: int = 0
    #: merged vreg -> representative it was folded into.
    merged: dict[VirtualRegister, VirtualRegister] = field(default_factory=dict)


def coalesce(
    function: Function,
    regclass: RegClass | None = None,
    max_rounds: int = 8,
    am: AnalysisManager | None = None,
) -> CoalescingResult:
    """Coalesce copies in *function* in place; returns statistics.

    Copies marked ``sdg_copy`` or ``split_copy`` are never coalesced: they
    were inserted deliberately by later phases (subgroup splitting inserts
    its copies after this pass precisely to keep them).

    Live intervals come from *am* (one is created when absent); every
    round that rewrites the function invalidates all but the CFG-level
    analyses, so the cache is consistent with the final function state
    when this returns.
    """
    if am is None:
        am = AnalysisManager(function)
    result = CoalescingResult()
    for _round in range(max_rounds):
        with TRACER.span(
            "coalesce-round", category="stage", function=function.name,
            round=_round,
        ):
            merged_this_round = _coalesce_round(function, regclass, result, am)
        result.rounds += 1
        if not merged_this_round:
            break
    METRICS.inc("coalescing.copies_removed", result.copies_removed)
    METRICS.observe("coalescing.rounds", result.rounds)
    return result


def _coalesce_round(
    function: Function,
    regclass: RegClass | None,
    result: CoalescingResult,
    am: AnalysisManager,
) -> int:
    live = am.get(LiveIntervalsAnalysis)
    # Resolved once per round: interval overlap becomes one bitmask AND,
    # and the rewrite below touches only instructions a merge reaches.
    fast = flat_enabled()
    mapping: dict[VirtualRegister, VirtualRegister] = {}
    dead_copies: set[int] = set()

    for block in function.blocks:
        for instr in block:
            if instr.kind is not OpKind.COPY:
                continue
            if instr.attrs.get("sdg_copy") or instr.attrs.get("split_copy"):
                continue
            if len(instr.defs) != 1 or len(instr.uses) != 1:
                continue
            dst, src = instr.defs[0], instr.uses[0]
            if not isinstance(dst, VirtualRegister) or not isinstance(src, VirtualRegister):
                continue
            if dst.regclass != src.regclass:
                continue
            if regclass is not None and dst.regclass != regclass:
                continue
            # Resolve through merges already decided this round.
            dst = mapping.get(dst, dst)
            src = mapping.get(src, src)
            if dst == src:
                dead_copies.add(id(instr))
                continue
            if dst not in live.intervals or src not in live.intervals:
                continue
            if fast:
                overlap = bool(live.of(dst).mask & live.of(src).mask)
            else:
                overlap = live.of(dst).overlaps(live.of(src))
            if overlap:
                # Overlap caused by this very copy is fine only when the
                # copy is the single connection; be conservative and skip.
                continue
            mapping[dst] = src
            result.merged[dst] = src
            dead_copies.add(id(instr))

    if not mapping and not dead_copies:
        return 0

    # Path-compress the mapping (a -> b, b -> c becomes a -> c).
    def resolve(reg: VirtualRegister) -> VirtualRegister:
        seen = set()
        while reg in mapping and reg not in seen:
            seen.add(reg)
            reg = mapping[reg]
        return reg

    compressed = {reg: resolve(reg) for reg in mapping}

    removed = 0
    if fast:
        # Targeted rewrite: the flat reverse index names exactly the
        # instructions that reference a merged register; everything else
        # is kept by identity (value-identical to rewriting it with a
        # mapping that hits nothing).
        flat = am.get(FlatIRAnalysis)
        uses_of = flat.uses_of_reg()
        reg_ids = flat.reg_ids
        affected: set[int] = set()
        for reg in compressed:
            rid = reg_ids.get(reg)
            if rid is not None:
                affected.update(uses_of[rid])
        ordinal_of = flat.ordinal_of
        for block in function.blocks:
            new_instructions = []
            for instr in block.instructions:
                if id(instr) in dead_copies:
                    removed += 1
                    continue
                if ordinal_of.get(id(instr)) in affected:
                    new_instructions.append(instr.rewrite(compressed))
                else:
                    new_instructions.append(instr)
            block.instructions = new_instructions
    else:
        for block in function.blocks:
            new_instructions = []
            for instr in block.instructions:
                if id(instr) in dead_copies:
                    removed += 1
                    continue
                new_instructions.append(instr.rewrite(compressed))
            block.instructions = new_instructions
    result.copies_removed += removed
    # The rewrite replaced instruction objects: every id()-keyed or
    # register-keyed analysis is stale; only the block graph survives.
    am.invalidate(CFG_ONLY)
    return removed

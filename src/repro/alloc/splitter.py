"""Live-range splitting (region split around the hottest use loop).

A faithful miniature of LLVM RAGreedy's region splitting: when an interval
can neither be assigned nor evict anything, it is split into a *hot* child
covering the innermost loop with the most frequent uses and a *cold* child
covering the rest, connected by copies at the loop boundary.  Both
children are re-queued; split-generated children never split again (they
spill instead), bounding the work.

Splitting is precisely the operation the paper calls out as problematic
for prior RCG bank assigners — it creates new virtual registers *after*
the bank assignment phase ran ("Handle split-generated register" in
Algorithm 2); the PresCount policy resolves their bank from the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.intervals import LiveInterval
from ..analysis.slots import SlotIndexes
from ..ir.function import Function
from ..ir.loops import Loop, LoopInfo
from ..ir.types import VirtualRegister


@dataclass
class CopyAction:
    """A split copy to materialize: ``dst = mov src`` at a block edge."""

    block_label: str
    position: str  # "begin" | "end" (before the terminator)
    dst: VirtualRegister
    src: VirtualRegister


@dataclass
class SplitResult:
    """Children intervals plus rewrites/copies to apply at materialization."""

    children: list[LiveInterval]
    copies: list[CopyAction]
    #: instruction id -> {parent vreg -> child vreg}.
    rewrites: dict[int, dict[VirtualRegister, VirtualRegister]] = field(default_factory=dict)


def _hottest_use_loop(
    interval: LiveInterval,
    slots: SlotIndexes,
    loop_info: LoopInfo,
) -> Loop | None:
    """The innermost loop containing the most frequent use of *interval*."""
    best: Loop | None = None
    best_freq = -1.0
    for use in interval.use_slots:
        label = slots.block_of_slot(use).label
        loop = loop_info.innermost_loop(label)
        if loop is None:
            continue
        freq = loop_info.block_frequency(loop.header)
        if freq > best_freq:
            best, best_freq = loop, freq
    return best


def try_region_split(
    function: Function,
    slots: SlotIndexes,
    loop_info: LoopInfo,
    interval: LiveInterval,
) -> SplitResult | None:
    """Split *interval* around its hottest use loop, or return None.

    Returns None when splitting cannot help: all uses sit in one region,
    the interval does not extend beyond the loop, or there is no loop.
    """
    vreg = interval.reg
    if not isinstance(vreg, VirtualRegister):
        return None
    loop = _hottest_use_loop(interval, slots, loop_info)
    if loop is None:
        return None

    loop_ranges = sorted(slots.block_range[label] for label in loop.body)
    in_loop = lambda slot: any(lo <= slot < hi for lo, hi in loop_ranges)

    # Partition segments between the hot (in-loop) and cold children.
    hot_segments: list[tuple[int, int]] = []
    cold_segments: list[tuple[int, int]] = []
    for seg in interval.segments:
        cursor = seg.start
        boundaries = sorted(
            {seg.start, seg.end}
            | {p for lo, hi in loop_ranges for p in (lo, hi) if seg.start < p < seg.end}
        )
        for lo, hi in zip(boundaries, boundaries[1:]):
            target = hot_segments if in_loop(lo) else cold_segments
            if target and target[-1][1] == lo:
                target[-1] = (target[-1][0], hi)
            else:
                target.append((lo, hi))
            cursor = hi
    if not hot_segments or not cold_segments:
        return None  # nothing to separate

    hot_child = function.new_vreg(vreg.regclass)
    cold_child = function.new_vreg(vreg.regclass)
    hot_interval = LiveInterval(hot_child, weight=interval.weight * 2 + 1)
    cold_interval = LiveInterval(cold_child, weight=interval.weight / 2)
    # Widen each child by one slot at region boundaries so the connecting
    # copies are conservatively covered.
    for lo, hi in hot_segments:
        hot_interval.add_segment(max(0, lo - 1), hi + 1)
    for lo, hi in cold_segments:
        cold_interval.add_segment(max(0, lo - 1), hi + 1)

    for use in interval.use_slots:
        (hot_interval if in_loop(use) else cold_interval).use_slots.append(use)
    for wpoint in interval.def_slots:
        (hot_interval if in_loop(wpoint) else cold_interval).def_slots.append(wpoint)

    result = SplitResult(children=[hot_interval, cold_interval], copies=[])

    # Rewrite every touching instruction to the child owning its region.
    for block in function.blocks:
        block_in_loop = block.label in loop.body
        child = hot_child if block_in_loop else cold_child
        for instr in block:
            if vreg in instr.reg_uses() or vreg in instr.reg_defs():
                result.rewrites.setdefault(id(instr), {})[vreg] = child

    # Connecting copies: value flows into the loop through each out-of-loop
    # predecessor of the header (the preheader, where the copy executes once
    # rather than per iteration) and out of the loop at each exit edge, but
    # only where the parent is actually live across the boundary.
    header_start, __ = slots.block_range[loop.header]
    if interval.covers(header_start):
        for block in function.blocks:
            if block.label in loop.body:
                continue
            succs = block.successor_labels(function.next_label(block))
            if loop.header in succs:
                result.copies.append(CopyAction(block.label, "end", hot_child, cold_child))
    exit_labels = _loop_exit_labels(function, loop)
    for label in exit_labels:
        start, __ = slots.block_range[label]
        if interval.covers(start):
            result.copies.append(CopyAction(label, "begin", cold_child, hot_child))
    return result


def _loop_exit_labels(function: Function, loop: Loop) -> list[str]:
    """Blocks outside *loop* that are successors of loop blocks."""
    exits = []
    for label in loop.body:
        block = function.block(label)
        for succ in block.successor_labels(function.next_label(block)):
            if succ not in loop.body and succ not in exits:
                exits.append(succ)
    return exits


def materialize_copies(
    function: Function,
    copies: list[CopyAction],
    assignment: dict,
) -> int:
    """Insert split copies into *function* (physical operands); returns the
    number of copy instructions added.  Copies whose source and destination
    landed in the same physical register are elided (coalesced for free).
    """
    from ..ir import instruction as ins

    inserted = 0
    for action in copies:
        dst = assignment.get(action.dst, action.dst)
        src = assignment.get(action.src, action.src)
        if dst == src:
            continue
        block = function.block(action.block_label)
        copy_instr = ins.copy(dst, src, split_copy=True)
        if action.position == "begin":
            block.insert(0, copy_instr)
        else:
            index = len(block.instructions)
            if block.terminator is not None:
                index -= 1
            block.insert(index, copy_instr)
        inserted += 1
    return inserted

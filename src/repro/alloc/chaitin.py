"""Chaitin–Briggs graph-coloring register allocation, as a baseline.

The original coloring formulation the paper builds on (refs [7], [26]):
simplify nodes of degree < k onto a stack (optimistically pushing a
spill candidate when none qualifies), then select colors in pop order.
Nodes that receive no color are spilled and the whole process repeats on
the rewritten function.

The RCG-coloring of PresCount is deliberately *not* this algorithm — the
paper orders by conflict cost instead of degree — making this module the
natural control for the ``bench_ablation_order`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.cost import ConflictCostModel
from ..analysis.interference import InterferenceGraph
from ..analysis.intervals import LiveIntervals
from ..analysis.slots import SlotIndexes
from ..banks.register_file import RegisterFile
from ..ir.function import Function
from ..ir.loops import LoopInfo
from ..ir.types import FP, PhysicalRegister, RegClass, VirtualRegister
from .base import AllocationError, AllocationResult
from .linear_scan import _materialize_linear
from .spiller import SpillPlan, spill_interval


@dataclass
class ChaitinBriggsAllocator:
    """k-coloring allocator with optimistic (Briggs) spilling."""

    register_file: RegisterFile
    regclass: RegClass = FP
    max_iterations: int = 16

    def run(self, function: Function, *, clone: bool = True) -> AllocationResult:
        if clone:
            function = function.clone()
        result = AllocationResult(function)
        plan = SpillPlan()
        k = self.register_file.num_registers
        registers = self.register_file.registers()

        for _iteration in range(self.max_iterations):
            slots = SlotIndexes.build(function)
            live = LiveIntervals.build(function, slots=slots)
            loop_info = LoopInfo.build(function)
            cost = ConflictCostModel.build(function, loop_info, regclass=self.regclass)
            graph = InterferenceGraph.build(function, live, self.regclass)

            # Spill weights for choosing spill candidates.
            weights = {}
            for interval in live.vreg_intervals(self.regclass):
                weights[interval.reg] = cost.spill_weight(interval.reg, interval.size)

            stack = self._simplify(graph, k, weights)
            colors, spilled = self._select(graph, stack, registers)
            if not spilled:
                # Success: commit and materialize.  Spill code from earlier
                # iterations is already in the IR; the (now empty) plan only
                # drives the final operand rewrite.
                result.assignment.update(colors)
                _materialize_linear(function, result.assignment, plan)
                return result

            for vreg in spilled:
                # Spill vregs created by an earlier spill cannot recur.
                if vreg in plan.slot_of_vreg:
                    raise AllocationError(
                        f"chaitin-briggs: spilled {vreg!r} twice in {function.name}"
                    )
                result.spilled.add(vreg)
                spill_interval(function, slots, live.of(vreg), plan)
            # Rewrites are applied immediately (unlike the greedy allocator)
            # because the next iteration re-analyzes the rewritten IR.
            result.spill_instructions += len(plan.actions)
            self._apply_pending_rewrites(function, plan)
        raise AllocationError(
            f"chaitin-briggs: did not converge in {self.max_iterations} iterations"
        )

    # ------------------------------------------------------------------
    def _simplify(
        self,
        graph: InterferenceGraph,
        k: int,
        weights: dict[VirtualRegister, float],
    ) -> list[VirtualRegister]:
        degrees = {node: graph.degree(node) for node in graph.nodes()}
        removed: set[VirtualRegister] = set()
        stack: list[VirtualRegister] = []
        while len(removed) < len(degrees):
            candidates = [n for n in degrees if n not in removed and degrees[n] < k]
            if candidates:
                node = min(candidates, key=lambda n: (degrees[n], n.vid))
            else:
                # Optimistic push: cheapest spill candidate first.
                node = min(
                    (n for n in degrees if n not in removed),
                    key=lambda n: (weights.get(n, 0.0) / max(1, degrees[n]), n.vid),
                )
            removed.add(node)
            stack.append(node)
            for neighbor in graph.neighbors(node):
                if neighbor not in removed:
                    degrees[neighbor] -= 1
        return stack

    def _select(
        self,
        graph: InterferenceGraph,
        stack: list[VirtualRegister],
        registers: list[PhysicalRegister],
    ) -> tuple[dict[VirtualRegister, PhysicalRegister], list[VirtualRegister]]:
        colors: dict[VirtualRegister, PhysicalRegister] = {}
        spilled: list[VirtualRegister] = []
        for node in reversed(stack):
            taken = {
                colors[nb] for nb in graph.neighbors(node) if nb in colors
            }
            choice = next((r for r in registers if r not in taken), None)
            if choice is None:
                spilled.append(node)
            else:
                colors[node] = choice
        return colors, spilled

    def _apply_pending_rewrites(self, function: Function, plan: SpillPlan) -> None:
        """Apply operand rewrites and insert spill code between iterations."""
        from ..ir import instruction as ins

        reloads: dict[int, list] = {}
        stores: dict[int, list] = {}
        for action in plan.actions:
            if action.kind == "reload":
                reloads.setdefault(action.instr_id, []).append(
                    ins.load(action.tiny, spill_slot=action.slot_id, spill=True)
                )
            else:
                stores.setdefault(action.instr_id, []).append(
                    ins.store(action.tiny, spill_slot=action.slot_id, spill=True)
                )
        for block in function.blocks:
            new_instructions = []
            for instr in block.instructions:
                mapping = plan.rewrites.get(id(instr))
                rewritten = instr.rewrite(mapping) if mapping else instr
                new_instructions.extend(reloads.get(id(instr), []))
                new_instructions.append(rewritten)
                new_instructions.extend(stores.get(id(instr), []))
            block.instructions = new_instructions
        # Spill code is now part of the IR; reset the plan so the final
        # materialization does not duplicate it.
        plan.actions.clear()
        plan.rewrites.clear()

"""Allocator foundations: results, physical-register bookkeeping, and the
policy hook through which bank strategies (non / bcr / bpc) steer the
greedy allocator.

The paper's three compared register allocation methods differ *only* in
how candidate physical registers are ordered and filtered for each virtual
register (plus, for PresCount, a pre-pass that computes the bank
assignment).  Encoding that as an :class:`AllocationPolicy` keeps one
allocator implementation for all methods — mirroring how PresCount is
integrated into LLVM's single greedy allocator rather than replacing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from ..banks.register_file import RegisterFile
from ..ir.function import Function
from ..ir.types import PhysicalRegister, VirtualRegister
from ..analysis.intervals import LiveInterval


@dataclass
class AllocationResult:
    """Outcome of register allocation for one function.

    Attributes:
        function: The rewritten function (vregs replaced by physical
            registers, spill code materialized).
        assignment: Final vreg -> physreg map, including vregs created by
            splitting/spilling.
        spilled: Original vregs whose live ranges were spilled to memory.
        spill_instructions: Reloads + stores inserted for spills.
        copies_inserted: Copy instructions added by live-range splitting
            and SDG subgroup splitting.
        copies_removed: Copies eliminated by coalescing.
        evictions: Number of evict-and-requeue events in the allocator.
        stats: Free-form extra metrics (per-policy diagnostics).
    """

    function: Function
    assignment: dict[VirtualRegister, PhysicalRegister] = field(default_factory=dict)
    spilled: set[VirtualRegister] = field(default_factory=set)
    spill_instructions: int = 0
    copies_inserted: int = 0
    copies_removed: int = 0
    evictions: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def spill_count(self) -> int:
        """Number of spilled live ranges (the paper's "spillings")."""
        return len(self.spilled)


class AllocationError(RuntimeError):
    """Raised when allocation cannot make progress (pathological input)."""


@dataclass
class PhysRegState:
    """Intervals currently assigned to one physical register.

    With ``use_masks`` (set by the allocator when the flat core is
    active) the state additionally maintains the union coverage bitmask
    of its intervals, turning the free-probe into one AND.  The XOR on
    removal is exact because assigned intervals on one physical register
    are always pairwise disjoint (``is_free_for`` gates every add, and
    eviction removes all conflicts before a new add), and interval
    segment sets never mutate while assigned.
    """

    preg: PhysicalRegister
    intervals: list[LiveInterval] = field(default_factory=list)
    use_masks: bool = False
    mask: int = 0

    def conflicts_with(self, interval: LiveInterval) -> list[LiveInterval]:
        """Assigned intervals overlapping *interval*."""
        if self.use_masks:
            m = interval.mask
            if not self.mask & m:
                return []
            return [iv for iv in self.intervals if iv.mask & m]
        return [iv for iv in self.intervals if iv.overlaps(interval)]

    def is_free_for(self, interval: LiveInterval) -> bool:
        if self.use_masks:
            return not self.mask & interval.mask
        return not any(iv.overlaps(interval) for iv in self.intervals)

    def add(self, interval: LiveInterval) -> None:
        self.intervals.append(interval)
        if self.use_masks:
            self.mask |= interval.mask

    def remove(self, interval: LiveInterval) -> None:
        self.intervals.remove(interval)
        if self.use_masks:
            self.mask ^= interval.mask


class AllocationPolicy(Protocol):
    """Hook deciding candidate order and constraints per virtual register.

    Implementations: :class:`repro.prescount.bcr.BcrPolicy`,
    :class:`repro.prescount.bank_assigner.PresCountPolicy`, and the
    default :class:`NaturalOrderPolicy` below ("non").
    """

    def setup(self, allocator: "AllocatorContext") -> None:
        """Called once before the first interval is dequeued."""

    def order(
        self, vreg: VirtualRegister, interval: LiveInterval
    ) -> Sequence[PhysicalRegister]:
        """Candidate physical registers for *vreg*, most preferred first.

        Returning a subset makes the remaining registers unavailable to
        this vreg (strict constraints); returning a permutation of all
        registers expresses soft preferences.
        """
        ...

    def on_assign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        """Notification after *vreg* was (re)assigned to *preg*."""

    def on_unassign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        """Notification after *vreg* lost *preg* (eviction)."""


class AllocatorContext(Protocol):
    """What a policy may observe about the in-progress allocation."""

    function: Function
    register_file: RegisterFile

    def current_assignment(self) -> dict[VirtualRegister, PhysicalRegister]: ...
    def interval_of(self, vreg: VirtualRegister) -> LiveInterval: ...


class NaturalOrderPolicy:
    """The "non" method: first-free physical register in index order.

    With an interleaved register file, index order alternates banks, so
    operand banks end up effectively arbitrary — reproducing the prevalent
    conflicts of Fig. 1.
    """

    def __init__(self):
        self._registers: list[PhysicalRegister] = []

    def setup(self, allocator: AllocatorContext) -> None:
        self._registers = allocator.register_file.registers()

    def order(
        self, vreg: VirtualRegister, interval: LiveInterval
    ) -> Sequence[PhysicalRegister]:
        return self._registers

    def on_assign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        pass

    def on_unassign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        pass

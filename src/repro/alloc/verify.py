"""Post-allocation structural verification.

The value interpreter (:mod:`repro.sim.exec`) checks allocations
*semantically*; this module checks them *structurally*, with messages
that point at the defect instead of just detecting divergence:

* no virtual registers of the allocated class survive;
* every spill slot is stored before it is reloaded on every path
  (forward "definitely available" dataflow over slot sets);
* every physical-register read is reached by a write on every path
  (same dataflow over register sets);
* spill instructions carry their bookkeeping attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ir.block import BasicBlock
from ..ir.cfg import CFG
from ..ir.function import Function
from ..ir.instruction import OpKind
from ..ir.types import FP, PhysicalRegister, RegClass, VirtualRegister


@dataclass
class AllocationVerificationError(AssertionError):
    """Raised with a list of findings when verification fails."""

    findings: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        return "; ".join(self.findings) or "allocation verification failed"


def _available_in(
    function: Function,
    cfg: CFG,
    transfer: Callable[[BasicBlock, set], set],
) -> dict[str, set]:
    """Forward 'definitely available' dataflow to a fixed point.

    ``transfer(block, avail_in)`` returns the set available at block end.
    Returns the converged *entry* availability per block (intersection
    over predecessors; the function entry starts empty).
    """
    labels = [b.label for b in function.blocks if cfg.is_reachable(b.label)]
    available_out: dict[str, set | None] = {label: None for label in labels}

    def entry_set(label: str) -> set:
        if label == function.entry.label:
            return set()
        pred_outs = [
            available_out[p]
            for p in cfg.preds[label]
            if cfg.is_reachable(p) and available_out[p] is not None
        ]
        return set.intersection(*pred_outs) if pred_outs else set()

    changed = True
    while changed:
        changed = False
        for label in labels:
            out = transfer(function.block(label), entry_set(label))
            if available_out[label] is None or out != available_out[label]:
                available_out[label] = out
                changed = True
    return {label: entry_set(label) for label in labels}


def verify_allocation(
    function: Function,
    regclass: RegClass = FP,
    *,
    raise_on_failure: bool = True,
) -> list[str]:
    """Verify an allocated *function*; returns the list of findings
    (empty when clean).  With ``raise_on_failure`` (default) a non-empty
    list raises :class:`AllocationVerificationError`."""
    findings: list[str] = []
    cfg = CFG.build(function)

    # 1. No surviving virtual registers of the allocated class.
    for block in function.blocks:
        for instr in block:
            for reg in instr.regs():
                if isinstance(reg, VirtualRegister) and reg.regclass == regclass:
                    findings.append(
                        f"{block.label}: virtual register {reg!r} survived "
                        f"allocation in {instr!r}"
                    )

    # 2. Spill slots: store-before-reload on every path.
    def slot_transfer(block: BasicBlock, avail: set) -> set:
        for instr in block:
            slot = instr.attrs.get("spill_slot")
            if slot is not None and instr.kind is OpKind.STORE:
                avail.add(slot)
        return avail

    slot_in = _available_in(function, cfg, slot_transfer)
    for block in function.blocks:
        if block.label not in slot_in:
            continue
        avail = set(slot_in[block.label])
        for instr in block:
            slot = instr.attrs.get("spill_slot")
            if slot is None:
                continue
            if instr.kind is OpKind.LOAD and slot not in avail:
                findings.append(
                    f"{block.label}: reload from slot {slot} not dominated "
                    f"by a store on some path"
                )
            if instr.kind is OpKind.STORE:
                avail.add(slot)

    # 3. Physical registers: written before read on every path.
    def reg_transfer(block: BasicBlock, avail: set) -> set:
        for instr in block:
            for dst in instr.reg_defs():
                if isinstance(dst, PhysicalRegister) and dst.regclass == regclass:
                    avail.add(dst)
        return avail

    reg_in = _available_in(function, cfg, reg_transfer)
    for block in function.blocks:
        if block.label not in reg_in:
            continue
        avail = set(reg_in[block.label])
        for instr in block:
            for use in instr.reg_uses():
                if (
                    isinstance(use, PhysicalRegister)
                    and use.regclass == regclass
                    and use not in avail
                ):
                    findings.append(
                        f"{block.label}: read of {use!r} not dominated by a "
                        f"write on some path ({instr!r})"
                    )
            for dst in instr.reg_defs():
                if isinstance(dst, PhysicalRegister) and dst.regclass == regclass:
                    avail.add(dst)

    # 4. Spill instructions carry their tags.
    for block in function.blocks:
        for instr in block:
            if instr.attrs.get("spill") and instr.attrs.get("spill_slot") is None:
                findings.append(
                    f"{block.label}: spill-tagged {instr!r} without a slot"
                )

    unique: list[str] = []
    for finding in findings:
        if finding not in unique:
            unique.append(finding)
    if unique and raise_on_failure:
        raise AllocationVerificationError(unique)
    return unique

"""Spill decomposition.

Spilling a live range replaces it with memory residence plus *tiny*
intervals around each instruction that touches the register: a reload
feeds each use, a store drains each def.  The tiny intervals get infinite
spill weight (they must be register-resident for exactly one instruction)
and are re-queued into the allocator.

Decomposition works from the interval's recorded use/def slots rather
than by scanning the IR, because split-generated children exist only as
intervals until the final materialization pass (in
:mod:`repro.alloc.greedy`) rewrites the function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analysis.intervals import LiveInterval
from ..analysis.slots import SlotIndexes
from ..ir.function import Function
from ..ir.types import VirtualRegister

#: Spill weight of tiny intervals: they may evict anything and never spill.
TINY_WEIGHT = math.inf


@dataclass
class SpillAction:
    """One reload or store to materialize around an instruction."""

    kind: str  # "reload" | "store"
    instr_id: int
    tiny: VirtualRegister
    original: VirtualRegister
    slot_id: int


@dataclass
class SpillPlan:
    """Accumulated spill decisions for one allocation run."""

    actions: list[SpillAction] = field(default_factory=list)
    #: instruction id -> {spilled vreg -> tiny vreg} operand rewrites.
    rewrites: dict[int, dict[VirtualRegister, VirtualRegister]] = field(default_factory=dict)
    #: spilled vreg -> its stack slot id (used for boundary-copy folding).
    slot_of_vreg: dict[VirtualRegister, int] = field(default_factory=dict)
    next_slot_id: int = 0

    def new_slot(self) -> int:
        slot = self.next_slot_id
        self.next_slot_id += 1
        return slot

    @property
    def instruction_count(self) -> int:
        return len(self.actions)


def spill_interval(
    function: Function,
    slots: SlotIndexes,
    interval: LiveInterval,
    plan: SpillPlan,
) -> list[LiveInterval]:
    """Spill *interval*; return the tiny intervals to re-queue.

    One tiny vreg is created per instruction touching the register (an
    instruction that both reads and writes it — ``v = op v, x`` — shares a
    single tiny vreg covering the read and write points).
    """
    vreg = interval.reg
    if not isinstance(vreg, VirtualRegister):
        raise TypeError(f"can only spill virtual registers, got {vreg!r}")
    slot_id = plan.slot_of_vreg.get(vreg)
    if slot_id is None:
        slot_id = plan.new_slot()
        plan.slot_of_vreg[vreg] = slot_id

    # instruction slot -> (reads?, writes?), derived from the interval.
    touching: dict[int, list[bool]] = {}
    for use_slot in interval.use_slots:
        touching.setdefault(use_slot, [False, False])[0] = True
    for write_point in interval.def_slots:
        touching.setdefault(write_point - 1, [False, False])[1] = True

    tiny_intervals: list[LiveInterval] = []
    for slot, (reads, writes) in sorted(touching.items()):
        instr = slots.instruction(slot)
        tiny = function.new_vreg(vreg.regclass)
        start = slot - 1 if reads else slot + 1
        end = slot + 2 if writes else slot + 1
        tiny_interval = LiveInterval(tiny, weight=TINY_WEIGHT)
        tiny_interval.add_segment(start, end)
        if reads:
            tiny_interval.use_slots.append(slot)
            plan.actions.append(SpillAction("reload", id(instr), tiny, vreg, slot_id))
        if writes:
            tiny_interval.def_slots.append(slot + 1)
            plan.actions.append(SpillAction("store", id(instr), tiny, vreg, slot_id))
        plan.rewrites.setdefault(id(instr), {})[vreg] = tiny
        tiny_intervals.append(tiny_interval)
    return tiny_intervals

"""Linear scan register allocation (Poletto & Sarkar), as a baseline.

The paper's related-work section positions linear scan as the fast
alternative to graph coloring; we provide it for ablation comparisons and
as an independent check on the greedy allocator's spill behaviour.

Classic algorithm over whole intervals (holes ignored): process intervals
in increasing start order, expire finished actives, and when no register
is free spill the active interval with the furthest end point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.intervals import LiveInterval, LiveIntervals
from ..analysis.slots import SlotIndexes
from ..banks.register_file import RegisterFile
from ..ir import instruction as ins
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.types import FP, PhysicalRegister, RegClass, VirtualRegister
from .base import AllocationError, AllocationResult
from .spiller import SpillPlan, spill_interval


@dataclass
class LinearScanAllocator:
    """Poletto–Sarkar linear scan for one register class.

    A few registers are *reserved* for spill code: linear scan assigns
    whole intervals, so at a spill-heavy point every allocatable register
    can be occupied and reloads would have nowhere to live.  Reserving
    scratch registers is the textbook remedy.
    """

    register_file: RegisterFile
    regclass: RegClass = FP

    def _scratch_count(self) -> int:
        total = self.register_file.num_registers
        if total >= 8:
            return 3  # enough for a 3-operand instruction's reloads
        return max(0, total - 4)

    def run(self, function: Function, *, clone: bool = True) -> AllocationResult:
        if clone:
            function = function.clone()
        slots = SlotIndexes.build(function)
        live = LiveIntervals.build(function, slots=slots)

        intervals = sorted(
            live.vreg_intervals(self.regclass), key=lambda iv: (iv.start, iv.reg.vid)
        )
        registers = self.register_file.registers()
        scratch = self._scratch_count()
        allocatable = registers[: len(registers) - scratch] if scratch else registers
        free: list[PhysicalRegister] = list(allocatable)
        active: list[tuple[LiveInterval, PhysicalRegister]] = []
        assignment: dict[VirtualRegister, PhysicalRegister] = {}
        result = AllocationResult(function)
        spill_plan = SpillPlan()
        #: intervals spilled; their operands get tiny vregs assigned greedily
        #: in a cleanup pass below.
        deferred_tiny: list[LiveInterval] = []

        for interval in intervals:
            # Expire old intervals.
            still_active = []
            for other, preg in active:
                if other.end <= interval.start:
                    free.append(preg)
                else:
                    still_active.append((other, preg))
            active = still_active

            if free:
                preg = min(free, key=lambda r: r.index)
                free.remove(preg)
                active.append((interval, preg))
                assignment[interval.reg] = preg
                continue

            # Spill the active interval with the furthest end (or self).
            victim_idx = max(
                range(len(active)), key=lambda i: active[i][0].end, default=None
            )
            if victim_idx is not None and active[victim_idx][0].end > interval.end:
                victim, preg = active.pop(victim_idx)
                del assignment[victim.reg]
                result.spilled.add(victim.reg)
                deferred_tiny.extend(spill_interval(function, slots, victim, spill_plan))
                active.append((interval, preg))
                assignment[interval.reg] = preg
            else:
                result.spilled.add(interval.reg)
                deferred_tiny.extend(spill_interval(function, slots, interval, spill_plan))

        self._place_tiny_intervals(deferred_tiny, assignment, intervals, result)
        result.assignment = assignment
        result.spill_instructions = _materialize_linear(
            function, assignment, spill_plan
        )
        return result

    def _place_tiny_intervals(
        self,
        tiny_intervals: list[LiveInterval],
        assignment: dict[VirtualRegister, PhysicalRegister],
        allocated: list[LiveInterval],
        result: AllocationResult,
    ) -> None:
        """Give every reload/store vreg a register that is locally free."""
        by_reg: dict[PhysicalRegister, list[LiveInterval]] = {}
        for interval in allocated:
            preg = assignment.get(interval.reg)
            if preg is not None:
                by_reg.setdefault(preg, []).append(interval)
        # Prefer the reserved scratch registers (guaranteed conflict-free
        # among whole intervals), then fall back to any locally free one.
        registers = self.register_file.registers()
        scratch = self._scratch_count()
        ordered = (registers[len(registers) - scratch:] + registers) if scratch else registers
        for tiny in sorted(tiny_intervals, key=lambda iv: iv.start):
            placed = False
            for preg in ordered:
                occupants = by_reg.get(preg, [])
                if all(not tiny.overlaps(other) for other in occupants):
                    assignment[tiny.reg] = preg
                    by_reg.setdefault(preg, []).append(tiny)
                    placed = True
                    break
            if not placed:
                raise AllocationError(
                    f"linear scan: no register for spill interval {tiny!r}"
                )


def _materialize_linear(
    function: Function,
    assignment: dict[VirtualRegister, PhysicalRegister],
    plan: SpillPlan,
) -> int:
    """Insert spill code and rewrite operands to physical registers."""
    inserted = 0
    reloads: dict[int, list[Instruction]] = {}
    stores: dict[int, list[Instruction]] = {}
    for action in plan.actions:
        target = assignment.get(action.tiny, action.tiny)
        if action.kind == "reload":
            reloads.setdefault(action.instr_id, []).append(
                ins.load(target, spill_slot=action.slot_id, spill=True)
            )
        else:
            stores.setdefault(action.instr_id, []).append(
                ins.store(target, spill_slot=action.slot_id, spill=True)
            )
        inserted += 1
    for block in function.blocks:
        new_instructions: list[Instruction] = []
        for instr in block.instructions:
            rewritten = instr
            spill_map = plan.rewrites.get(id(instr))
            if spill_map:
                rewritten = rewritten.rewrite(spill_map)
            rewritten = rewritten.rewrite(assignment)
            new_instructions.extend(reloads.get(id(instr), []))
            new_instructions.append(rewritten)
            new_instructions.extend(stores.get(id(instr), []))
        block.instructions = new_instructions
    return inserted

"""Workload generation: seeded synthetic suites standing in for the
paper's SPECfp, CNN-KERNEL (MobileNet), and DSA-OP benchmarks, plus the
random-program generator used by property-based tests.
"""

from .cnn import (
    CNN_CATEGORIES,
    avg_pool2d_kernel,
    cnn_suite,
    conv2d_relu_kernel,
    elementwise_kernel,
    max_pool2d_kernel,
)
from .dsa_ops import (
    DSA_KERNELS,
    dsa_suite,
    dw_conv2d_kernel,
    idft_kernel,
    reduce_kernel,
    reduce_unrolled_kernel,
    shared_use_kernel,
    tr_kernel,
)
from .mobilenet import MOBILENET_V1_LAYERS, ConvLayer, layer_kernel, mobilenet_conv_kernels
from .stats import FunctionStats, SuiteStats
from .specfp import (
    SPECFP_BENCHMARKS,
    SpecBenchmark,
    Suite,
    SuiteProgram,
    generate_benchmark,
    specfp_suite,
)
from .synth import KernelSpec, generate_kernel, generate_scalar_function, random_function

__all__ = [
    "CNN_CATEGORIES",
    "DSA_KERNELS",
    "KernelSpec",
    "SPECFP_BENCHMARKS",
    "SpecBenchmark",
    "FunctionStats",
    "MOBILENET_V1_LAYERS",
    "ConvLayer",
    "layer_kernel",
    "mobilenet_conv_kernels",
    "SuiteStats",
    "Suite",
    "SuiteProgram",
    "avg_pool2d_kernel",
    "cnn_suite",
    "conv2d_relu_kernel",
    "dsa_suite",
    "dw_conv2d_kernel",
    "elementwise_kernel",
    "generate_benchmark",
    "generate_kernel",
    "generate_scalar_function",
    "idft_kernel",
    "max_pool2d_kernel",
    "random_function",
    "reduce_kernel",
    "reduce_unrolled_kernel",
    "shared_use_kernel",
    "specfp_suite",
    "tr_kernel",
]

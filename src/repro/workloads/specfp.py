"""SPECfp-like benchmark suite, calibrated to Table I.

SPEC CPU2006 sources are licensed, so the suite is *synthesized*: for
each of the paper's eight benchmarks we generate a module whose structural
statistics track Table I — number of functions, total conflict-relevant
instruction count ("Reles"), and register-pressure character (which Table
I exposes through the 32-register spill column Sp32: namd/dealII spill
heavily, lbm/sphinx3 not at all).

A ``scale`` parameter shrinks the *function count* (and therefore total
Reles) while keeping per-function sizes faithful, so tests can run on a
sliver and benches on the full calibrated suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..ir.function import Function, Module
from .synth import KernelSpec, generate_kernel, generate_scalar_function


@dataclass(frozen=True)
class SpecBenchmark:
    """Table I row: calibration targets for one benchmark.

    ``pressure`` selects a live-value profile; ``relevant_fraction`` is
    the share of functions containing conflict-relevant instructions
    (56.37% across the suite per Fig. 1a).
    """

    name: str
    modules: int
    functions: int
    reles: int
    pressure: str  # "none" | "low" | "med" | "high"
    relevant_fraction: float = 0.56


#: The eight SPECfp benchmarks of Table I.
SPECFP_BENCHMARKS: tuple[SpecBenchmark, ...] = (
    SpecBenchmark("433.milc", 68, 235, 1730, "low"),
    SpecBenchmark("435.gromacs", 131, 925, 10143, "med"),
    SpecBenchmark("444.namd", 11, 94, 9012, "high", 0.70),
    SpecBenchmark("447.dealII", 116, 7373, 19191, "high", 0.45),
    SpecBenchmark("450.soplex", 63, 1240, 2741, "low", 0.50),
    SpecBenchmark("453.povray", 100, 1537, 19749, "med", 0.60),
    SpecBenchmark("470.lbm", 2, 17, 672, "none", 0.75),
    SpecBenchmark("482.sphinx3", 44, 318, 361, "none", 0.55),
)

#: live-value / op-count profiles per pressure class.  High pressure must
#: exceed the 32-register budget of Platform-RV#2 to reproduce Sp32.
_PRESSURE_PROFILES = {
    "none": dict(live=(4, 7), unroll=(1, 1), depth=(1, 2), sharing=0.15),
    "low": dict(live=(6, 10), unroll=(1, 2), depth=(1, 3), sharing=0.25),
    "med": dict(live=(10, 18), unroll=(1, 3), depth=(2, 3), sharing=0.35),
    "high": dict(live=(20, 44), unroll=(2, 4), depth=(2, 3), sharing=0.45),
}

_TRIP_CHOICES = (4, 8, 10, 16, 32, 100)


@dataclass
class SuiteProgram:
    """One test/executable of a suite: a module plus its category."""

    name: str
    category: str
    module: Module

    def functions(self) -> list[Function]:
        return self.module.functions


@dataclass
class Suite:
    """A named collection of programs (SPECfp / CNN-KERNEL / DSA-OP)."""

    name: str
    programs: list[SuiteProgram] = field(default_factory=list)

    def functions(self) -> list[Function]:
        return [fn for prog in self.programs for fn in prog.functions()]

    def by_category(self) -> dict[str, list[SuiteProgram]]:
        grouped: dict[str, list[SuiteProgram]] = {}
        for prog in self.programs:
            grouped.setdefault(prog.category, []).append(prog)
        return grouped

    def __len__(self) -> int:
        return len(self.programs)


def _relevant_spec(
    bench: SpecBenchmark, index: int, rng: random.Random, target_reles: float
) -> KernelSpec:
    """Build a kernel spec whose conflict-relevant count approximates
    *target_reles* under the benchmark's pressure profile."""
    profile = _PRESSURE_PROFILES[bench.pressure]
    unroll = rng.randint(*profile["unroll"])
    depth = rng.randint(*profile["depth"])
    fp_fraction = rng.uniform(0.7, 0.95)
    # Each emitted FP op with >= 2 distinct reads is conflict-relevant;
    # sharing occasionally collapses operands, so pad by ~10%.
    body_ops = max(2, round(target_reles / (unroll * fp_fraction) * 1.1))
    return KernelSpec(
        name=f"{bench.name}.fn{index}",
        seed=rng.randrange(1 << 30),
        live_values=rng.randint(*profile["live"]),
        body_ops=body_ops,
        loop_depth=depth,
        trip_counts=tuple(rng.choice(_TRIP_CHOICES) for __ in range(depth)),
        unroll=unroll,
        sharing=profile["sharing"],
        accumulate=rng.uniform(0.1, 0.3),
        branch_prob=rng.uniform(0.0, 0.25),
        fp_fraction=fp_fraction,
        ternary_fraction=rng.uniform(0.05, 0.2),
    )


def generate_benchmark(
    bench: SpecBenchmark, scale: float = 0.1, seed: int = 0
) -> Module:
    """Generate one benchmark's module at the given *scale*."""
    # String seeding is deterministic (SHA-based) across interpreter runs.
    rng = random.Random(f"{seed}:{bench.name}")
    total_functions = max(4, round(bench.functions * scale))
    relevant_count = max(2, round(total_functions * bench.relevant_fraction))
    reles_per_relevant = bench.reles / max(1, bench.functions * bench.relevant_fraction)

    module = Module(bench.name)
    module.attrs["benchmark"] = bench
    for index in range(total_functions):
        if index < relevant_count:
            # Vary sizes log-normally around the per-function target so the
            # suite has both hot kernels and small helpers.
            target = max(2.0, rng.lognormvariate(0.0, 0.6) * reles_per_relevant)
            spec = _relevant_spec(bench, index, rng, target)
            function = module.add(generate_kernel(spec))
        else:
            function = module.add(
                generate_scalar_function(
                    f"{bench.name}.scalar{index}", rng.randrange(1 << 30)
                )
            )
        # Input coverage: the SPEC reference inputs exercise only part of
        # each binary, which is why the paper's *dynamic* conflict counts
        # sit below the static ones (Table IV's discussion).  Roughly 70%
        # of functions execute on a given input.
        function.attrs["covered"] = rng.random() < 0.7
    return module


def specfp_suite(scale: float = 0.1, seed: int = 0) -> Suite:
    """The full SPECfp-like suite: one program per Table I benchmark."""
    suite = Suite("SPECfp")
    for bench in SPECFP_BENCHMARKS:
        module = generate_benchmark(bench, scale, seed)
        suite.programs.append(SuiteProgram(bench.name, bench.name, module))
    return suite

"""Seeded synthetic program generation primitives.

The benchmark suites the paper evaluates (SPEC CPU2006 fp binaries,
MobileNet kernels, hand-written DSA kernels) are not redistributable, so
the suite modules generate IR with the *structural* properties that drive
the bank assigner: loop nests with known trip counts, floating-point
arithmetic chains with controlled operand sharing, live-range pressure,
and data-dependent branches.  Everything is deterministic in the seed.

The building blocks here are shared by :mod:`repro.workloads.specfp`,
:mod:`repro.workloads.cnn`, and :mod:`repro.workloads.dsa_ops`, and by
the property-based tests (random well-formed functions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.types import VirtualRegister
from ..ir.verifier import verify_function

#: Opcode pools by arity for generated arithmetic.
BINARY_OPS = ("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax")
TERNARY_OPS = ("fmadd", "fmsub")
UNARY_OPS = ("fneg", "fabs", "fsqrt", "frelu")


@dataclass
class KernelSpec:
    """Knobs for one generated compute kernel.

    Attributes:
        name: Function name.
        seed: RNG seed; every structural choice derives from it.
        live_values: Values kept live across the main loop body (register
            pressure driver).
        body_ops: Arithmetic instructions per (pre-unroll) loop body.
        loop_depth: Nesting depth of the main loop nest.
        trip_counts: Trip count per nest level, outermost first; padded or
            truncated to ``loop_depth``.
        unroll: Body replication factor (the paper unrolls CNN kernels
            manually to raise bank pressure; same mechanism here).
        sharing: Probability that an operand reuses a *hot* shared value
            instead of a random live value (drives RCG density and SDG
            input sharing).
        accumulate: Probability that an op writes into a persistent
            accumulator instead of a fresh value (drives output sharing).
        branch_prob: Probability of wrapping an op in a data-dependent
            ``if`` (creates static/dynamic divergence, Table IV).
        fp_fraction: Fraction of ops that are floating point (bankable);
            the rest are bookkeeping on fresh values that never conflict.
        ternary_fraction: Fraction of FP ops using three inputs.
    """

    name: str
    seed: int = 0
    live_values: int = 8
    body_ops: int = 16
    loop_depth: int = 2
    trip_counts: tuple[int, ...] = (10, 10)
    unroll: int = 1
    sharing: float = 0.3
    accumulate: float = 0.2
    branch_prob: float = 0.0
    fp_fraction: float = 1.0
    ternary_fraction: float = 0.1

    def normalized_trips(self) -> list[int]:
        trips = list(self.trip_counts)[: self.loop_depth]
        while len(trips) < self.loop_depth:
            trips.append(10)
        return trips


def generate_kernel(spec: KernelSpec) -> Function:
    """Generate one verified kernel function from *spec*."""
    rng = random.Random(spec.seed)
    b = IRBuilder(spec.name)

    live = [b.const(round(rng.uniform(0.5, 2.0), 3)) for __ in range(spec.live_values)]
    shared = live[: max(1, spec.live_values // 4)]
    accumulators = [b.const(0.0) for __ in range(max(1, spec.live_values // 4))]

    def pick_operand() -> VirtualRegister:
        if rng.random() < spec.sharing:
            return rng.choice(shared)
        return rng.choice(live)

    def emit_op(in_branch: bool = False) -> None:
        if rng.random() >= spec.fp_fraction:
            # Bookkeeping op: single-input, can never bank-conflict.
            b.arith(rng.choice(UNARY_OPS), pick_operand())
            return
        if rng.random() < spec.ternary_fraction:
            opcode = rng.choice(TERNARY_OPS)
            sources = [pick_operand(), pick_operand(), pick_operand()]
        else:
            opcode = rng.choice(BINARY_OPS)
            sources = [pick_operand(), pick_operand()]
        if in_branch or rng.random() < spec.accumulate:
            # Reduction shape: the accumulator is both an input and the
            # output (`acc = op acc, src...`), the paper's output sharing.
            # Inside a branch arm this is also the only safe form: a fresh
            # register defined conditionally would be undefined on the
            # not-taken path.
            acc = rng.choice(accumulators)
            b.arith_into(acc, opcode, acc, *sources[1:])
        else:
            result = b.arith(opcode, *sources)
            # Rotate the result into the live set so values chain.
            live[rng.randrange(len(live))] = result

    def emit_body() -> None:
        for __ in range(spec.unroll):
            for __ in range(spec.body_ops):
                if spec.branch_prob > 0.0 and rng.random() < spec.branch_prob:
                    with b.if_then(taken_prob=round(rng.uniform(0.2, 0.8), 2)):
                        emit_op(in_branch=True)
                else:
                    emit_op()

    def nest(levels: list[int]) -> None:
        if not levels:
            emit_body()
            return
        with b.loop(trip_count=levels[0]):
            nest(levels[1:])

    nest(spec.normalized_trips())
    b.ret(accumulators[0])
    function = b.finish()
    function.attrs["spec"] = spec
    verify_function(function)
    return function


def generate_scalar_function(name: str, seed: int, ops: int = 12) -> Function:
    """A conflict-irrelevant function: unary/control-only work.

    Used for the suite fractions of Fig. 1 (not every program in SPECfp
    touches two FP registers per instruction).
    """
    rng = random.Random(seed)
    b = IRBuilder(name)
    value = b.const(1.0)
    with b.loop(trip_count=rng.choice((4, 8, 16))):
        for __ in range(ops):
            value = b.arith(rng.choice(UNARY_OPS), value)
    b.ret(value)
    function = b.finish()
    verify_function(function)
    return function


def random_function(seed: int, *, max_depth: int = 3, max_ops: int = 40) -> Function:
    """A random well-formed function for property-based testing.

    Exercises loops, branches, sharing, accumulation, and mixed arity with
    bounds small enough for fast hypothesis runs.
    """
    rng = random.Random(seed)
    depth = rng.randint(0, max_depth)
    # Cap the dynamic size (trip-count product) so the value interpreter
    # can always run generated functions to completion in tests.
    trips: list[int] = []
    product = 1
    for __ in range(depth):
        trip = rng.choice((1, 2, 4, 10, 64))
        while product * trip > 4096:
            trip = max(1, trip // 4)
        trips.append(trip)
        product *= trip
    spec = KernelSpec(
        name=f"rand{seed}",
        seed=seed,
        live_values=rng.randint(2, 10),
        body_ops=rng.randint(1, max_ops),
        loop_depth=depth,
        trip_counts=tuple(trips),
        unroll=rng.randint(1, 3),
        sharing=rng.random(),
        accumulate=rng.random() * 0.6,
        branch_prob=rng.random() * 0.4,
        fp_fraction=0.5 + rng.random() * 0.5,
        ternary_fraction=rng.random() * 0.3,
    )
    return generate_kernel(spec)

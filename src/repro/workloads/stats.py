"""Suite statistics: structural summaries of generated workloads.

Used to sanity-check calibration against Table I (and by the `suite`
CLI subcommand): instruction mix, loop-nest shapes, live-range pressure,
and conflict-relevant densities, per program and aggregated.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..analysis.intervals import LiveIntervals
from ..ir.function import Function
from ..ir.loops import LoopInfo
from ..sim.static_stats import count_conflict_relevant
from .specfp import Suite


@dataclass
class FunctionStats:
    """Structural summary of one function."""

    name: str
    instructions: int = 0
    blocks: int = 0
    loops: int = 0
    max_loop_depth: int = 0
    max_trip_product: float = 1.0
    conflict_relevant: int = 0
    max_pressure: int = 0
    opcode_mix: Counter = field(default_factory=Counter)

    @classmethod
    def of(cls, function: Function) -> "FunctionStats":
        """Measure *function*."""
        loop_info = LoopInfo.build(function)
        stats = cls(
            name=function.name,
            instructions=function.instruction_count(),
            blocks=len(function.blocks),
            loops=len(loop_info),
            conflict_relevant=count_conflict_relevant(function),
            max_pressure=LiveIntervals.build(function).max_pressure(),
        )
        for loop in loop_info:
            stats.max_loop_depth = max(stats.max_loop_depth, loop.depth)
        for block in function.blocks:
            stats.max_trip_product = max(
                stats.max_trip_product, loop_info.block_frequency(block.label)
            )
            for instr in block:
                stats.opcode_mix[instr.opcode] += 1
        return stats

    @property
    def conflict_density(self) -> float:
        """Conflict-relevant instructions per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.conflict_relevant / self.instructions


@dataclass
class SuiteStats:
    """Aggregated statistics of a whole suite."""

    suite: str
    functions: list[FunctionStats] = field(default_factory=list)

    @classmethod
    def of(cls, suite: Suite) -> "SuiteStats":
        """Measure every function of *suite*."""
        stats = cls(suite.name)
        for function in suite.functions():
            stats.functions.append(FunctionStats.of(function))
        return stats

    @property
    def total_instructions(self) -> int:
        """Instruction count summed over the suite."""
        return sum(f.instructions for f in self.functions)

    @property
    def total_conflict_relevant(self) -> int:
        """Conflict-relevant instruction count summed over the suite."""
        return sum(f.conflict_relevant for f in self.functions)

    @property
    def relevant_function_share(self) -> float:
        """Fraction of functions with any conflict-relevant instruction
        (Fig. 1a/1c's quantity)."""
        if not self.functions:
            return 0.0
        relevant = sum(1 for f in self.functions if f.conflict_relevant > 0)
        return relevant / len(self.functions)

    def pressure_histogram(self, buckets=(8, 16, 32, 64)) -> dict[str, int]:
        """Functions per max-pressure bucket — shows which platform
        (RV#1 vs RV#2) a suite stresses."""
        histogram: dict[str, int] = {}
        edges = [0, *buckets]
        for low, high in zip(edges, edges[1:]):
            key = f"{low + 1}-{high}"
            histogram[key] = sum(
                1 for f in self.functions if low < f.max_pressure <= high
            )
        histogram[f">{buckets[-1]}"] = sum(
            1 for f in self.functions if f.max_pressure > buckets[-1]
        )
        return histogram

    def loop_depth_histogram(self) -> dict[int, int]:
        """Functions per maximum loop-nest depth."""
        counter: Counter = Counter(f.max_loop_depth for f in self.functions)
        return dict(sorted(counter.items()))

    def opcode_mix(self) -> Counter:
        """Opcode frequency over the whole suite."""
        total: Counter = Counter()
        for f in self.functions:
            total.update(f.opcode_mix)
        return total

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"suite {self.suite}: {len(self.functions)} functions, "
            f"{self.total_instructions} instructions, "
            f"{self.total_conflict_relevant} conflict-relevant "
            f"({100 * self.relevant_function_share:.1f}% of functions relevant)",
            f"  loop depth histogram: {self.loop_depth_histogram()}",
            f"  pressure histogram:   {self.pressure_histogram()}",
            "  top opcodes: "
            + ", ".join(f"{op}({n})" for op, n in self.opcode_mix().most_common(6)),
        ]
        return "\n".join(lines)

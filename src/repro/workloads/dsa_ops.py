"""DSA-OP suite: hand-written AI kernels for the bank-subgroup DSA.

The paper's eight kernels (Table VI), rebuilt as IR generators with the
same computational structure:

* ``reduce`` / ``red-ur`` — value reductions (plain and unrolled): heavy
  *output sharing* (one accumulator written by many ops, Fig. 9);
* ``shruse`` / ``sr-ur`` — shared-operand kernels (plain and unrolled):
  heavy *input sharing* (one value read by many ops, Fig. 8);
* ``dw-conv2d`` — a depthwise 3x3 convolution;
* ``tr18987`` / ``tr15651`` — mixed elementwise/transform kernels sized
  after the paper's test cases;
* ``idft`` — a genuine fully-unrolled N-point inverse discrete Fourier
  transform with constant twiddle factors: the paper's hardest case
  (large shared-input components force thousands of subgroup-splitting
  copies under bpc).
"""

from __future__ import annotations

import math
import random

from ..ir.builder import IRBuilder
from ..ir.function import Function, Module
from ..ir.verifier import verify_function
from .specfp import Suite, SuiteProgram


def reduce_kernel(name: str = "reduce", inputs: int = 10, trip_count: int = 8) -> Function:
    """Linear reduction: one accumulator absorbing every input."""
    b = IRBuilder(name)
    values = [b.const(float(i)) for i in range(inputs)]
    acc = b.const(0.0)
    with b.loop(trip_count=trip_count):
        for value in values:
            b.arith_into(acc, "fadd", acc, value)
    b.ret(acc)
    fn = b.finish()
    verify_function(fn)
    return fn


def reduce_unrolled_kernel(
    name: str = "red-ur", inputs: int = 48, lanes: int = 4, trip_count: int = 8
) -> Function:
    """Unrolled reduction: several accumulator lanes, merged at the end."""
    b = IRBuilder(name)
    values = [b.const(float(i)) for i in range(inputs)]
    accs = [b.const(0.0) for __ in range(lanes)]
    with b.loop(trip_count=trip_count):
        for i, value in enumerate(values):
            acc = accs[i % lanes]
            b.arith_into(acc, "fadd", acc, value)
    total = accs[0]
    for acc in accs[1:]:
        total = b.arith("fadd", total, acc)
    b.ret(total)
    fn = b.finish()
    verify_function(fn)
    return fn


def shared_use_kernel(
    name: str = "shruse", consumers: int = 10, separation: int = 15
) -> Function:
    """Two hot values read by every operation (pure input sharing).

    The two shared registers are separated by *separation* long-lived
    filler values.  Index-order ("non") allocation therefore places them
    16 registers apart — the same bank under 2-, 4-, 8-, *and* 16-way
    interleaving, which is why the paper's shruse/sr-ur rows stay at 100%
    for every plain-banked hardware point while bpc trivially fixes them.
    """
    b = IRBuilder(name)
    hot_a = b.const(2.0)
    fillers = [b.const(float(i)) for i in range(separation)]
    hot_b = b.const(3.0)
    # The consumers live in a loop so the fillers stay live across them
    # (their closing uses sit in the exit block, out of the pre-allocation
    # scheduler's reach) and keep their register indexes in between.
    with b.loop(trip_count=1):
        for i in range(consumers):
            b.arith("fmul", hot_a, hot_b, consumer=i)
    for filler in fillers:
        b.arith("fneg", filler)
    b.ret(hot_a)
    fn = b.finish()
    verify_function(fn)
    return fn


def shared_use_unrolled_kernel(
    name: str = "sr-ur", consumers: int = 200, separation: int = 15
) -> Function:
    """The unrolled shared-use kernel: a much wider fanout."""
    return shared_use_kernel(name, consumers, separation)


def dw_conv2d_kernel(
    name: str = "dw-conv2d",
    trip_counts: tuple[int, int] = (4, 4),
    channels: int = 2,
) -> Function:
    """Depthwise 3x3 convolution: 9 taps x weights per channel."""
    b = IRBuilder(name)
    weights = [b.const(round(0.1 * (i + 1), 2)) for i in range(9)]
    with b.loop(trip_count=trip_counts[0]):
        lanes = [
            [b.const(float(9 * c + i)) for i in range(9)] for c in range(channels)
        ]
        with b.loop(trip_count=trip_counts[1]):
            for c in range(channels):
                acc = b.const(0.0)
                for pixel, weight in zip(lanes[c], weights):
                    product = b.arith("fmul", pixel, weight)
                    b.arith_into(acc, "fadd", acc, product)
                lanes[c] = lanes[c][1:] + [acc]
    b.ret()
    fn = b.finish()
    verify_function(fn)
    return fn


def tr_kernel(
    name: str,
    ops: int,
    seed: int = 0,
    trip_count: int = 2,
    odd_cycle_ops: int = 0,
) -> Function:
    """Mixed transform kernel (models the paper's tr18987/tr15651 cases).

    Lanes are split into two streams that combine pairwise — the
    butterfly/transpose structure of real transform kernels, whose RCG is
    bipartite and therefore 2-bank colorable.  ``odd_cycle_ops`` injects
    same-stream combinations that create odd RCG cycles: tr18987 keeps a
    small uncolorable residue in the paper (0.57%), tr15651 none.
    """
    rng = random.Random(f"{seed}:{name}")
    b = IRBuilder(name)
    stream_a = [b.const(float(i + 1)) for i in range(6)]
    stream_b = [b.const(float(-i - 1)) for i in range(6)]
    with b.loop(trip_count=trip_count):
        for i in range(ops):
            a = rng.randrange(len(stream_a))
            c = rng.randrange(len(stream_b))
            if rng.random() < 0.5:
                stream_a[a] = b.arith("fadd", stream_a[a], stream_b[c])
            else:
                stream_b[c] = b.arith("fmul", stream_b[c], stream_a[a])
        for __ in range(odd_cycle_ops):
            # An explicit RCG triangle over three live registers: with two
            # banks one of its three edges must stay monochromatic, leaving
            # a small residual conflict (tr18987's 0.57% in the paper).
            x, y, z = stream_a[0], stream_b[0], stream_a[1]
            t1 = b.arith("fadd", x, y)
            t2 = b.arith("fadd", y, z)
            t3 = b.arith("fadd", z, x)
            stream_a[2] = b.arith("fadd", t1, t2)
            stream_b[2] = b.arith("fadd", t2, t3)
    b.ret(stream_a[0])
    fn = b.finish()
    verify_function(fn)
    return fn


def idft_kernel(name: str = "idft", points: int = 24) -> Function:
    """Fully unrolled N-point inverse DFT on real/imaginary lanes.

    x[n] = (1/N) * sum_k ( Xre[k]*cos(2*pi*k*n/N) - Xim[k]*sin(...) )
    (real part; the imaginary lane is computed symmetrically).

    Every output reads the *whole* input vector, producing the massive
    shared-input SDG components that make idft the stress test of
    Tables VI/VII.
    """
    b = IRBuilder(name)
    n = points
    xre = [b.const(round(math.sin(0.7 * k + 0.3), 6)) for k in range(n)]
    xim = [b.const(round(math.cos(1.3 * k), 6)) for k in range(n)]
    inv_n = b.const(round(1.0 / n, 8))
    out_re_first = None
    for out_index in range(n):
        acc_re = b.const(0.0)
        acc_im = b.const(0.0)
        for k in range(n):
            angle = 2.0 * math.pi * k * out_index / n
            cos_t = b.const(round(math.cos(angle), 8))
            sin_t = b.const(round(math.sin(angle), 8))
            term1 = b.arith("fmul", xre[k], cos_t)
            term2 = b.arith("fmul", xim[k], sin_t)
            diff = b.arith("fsub", term1, term2)
            b.arith_into(acc_re, "fadd", acc_re, diff)
            term3 = b.arith("fmul", xre[k], sin_t)
            term4 = b.arith("fmul", xim[k], cos_t)
            summ = b.arith("fadd", term3, term4)
            b.arith_into(acc_im, "fadd", acc_im, summ)
        scaled_re = b.arith("fmul", acc_re, inv_n)
        b.arith("fmul", acc_im, inv_n)
        if out_re_first is None:
            out_re_first = scaled_re
    b.ret(out_re_first)
    fn = b.finish()
    verify_function(fn)
    return fn


#: Kernel registry: name -> factory (paper's Table VI rows, in order).
DSA_KERNELS = {
    "reduce": lambda: reduce_kernel(),
    "red-ur": lambda: reduce_unrolled_kernel(),
    "shruse": lambda: shared_use_kernel(),
    "sr-ur": lambda: shared_use_unrolled_kernel(),
    "dw-conv2d": lambda: dw_conv2d_kernel(),
    "tr18987": lambda: tr_kernel("tr18987", ops=330, odd_cycle_ops=2),
    "tr15651": lambda: tr_kernel("tr15651", ops=1200, seed=1),
    "idft": lambda: idft_kernel(),
}


def dsa_suite(seed: int = 0, idft_points: int = 24) -> Suite:
    """The DSA-OP suite: one program per kernel."""
    suite = Suite("DSA-OP")
    for name, factory in DSA_KERNELS.items():
        if name == "idft":
            fn = idft_kernel(points=idft_points)
        else:
            fn = factory()
        module = Module(name)
        module.add(fn)
        suite.programs.append(SuiteProgram(name, name, module))
    return suite

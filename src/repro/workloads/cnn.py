"""CNN-KERNEL suite: MobileNet-style kernels, calibrated to Table I.

64 kernels in four operation categories (the paper's Table I groups):

* ``conv2d.relu`` — 42 executables, geomean ~1089 conflict-relevant
  instructions: pointwise/depthwise convolution inner products fused with
  ReLU, *manually unrolled* (as the paper does) to raise bank pressure;
* ``avg.pool2d`` — 6 executables, ~1010 Reles: window accumulation and a
  reciprocal multiply;
* ``max.pool2d`` — 6 executables, ~327 Reles: window fmax trees;
* ``other`` — 3 conflict-relevant executables (~42 Reles: bias-add,
  batch-norm, softmax-ish) plus conflict-irrelevant activations to match
  Fig. 1c's 85.48% conflict-relevant share (53-ish of 64).

Kernels are built explicitly (not through the random synthesizer) so the
operand-sharing structure is the real one: convolution shares weights
across unrolled output positions (input sharing), pooling shares the
window accumulator (output sharing).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..ir.builder import IRBuilder
from ..ir.function import Function, Module
from ..ir.verifier import verify_function
from .specfp import Suite, SuiteProgram
from .synth import generate_scalar_function


# ----------------------------------------------------------------------
# Kernel generators
# ----------------------------------------------------------------------
def conv2d_relu_kernel(
    name: str,
    channels: int = 8,
    kernel_size: int = 3,
    unroll: int = 4,
    trip_counts: tuple[int, int] = (16, 16),
    seed: int = 0,
) -> Function:
    """Unrolled convolution inner product fused with ReLU.

    For each of ``unroll`` output positions the inner loop multiplies
    ``channels * kernel_size`` input/weight pairs into an accumulator; the
    weights are *shared* across the unrolled positions — the input-sharing
    structure of Fig. 8.
    """
    rng = random.Random(seed)
    b = IRBuilder(name)
    taps = kernel_size * kernel_size
    weights = [b.const(round(rng.uniform(-1, 1), 4)) for __ in range(min(taps, 9))]
    with b.loop(trip_count=trip_counts[0]):  # output rows
        inputs = [b.const(float(i)) for i in range(channels)]
        with b.loop(trip_count=trip_counts[1]):  # output cols
            accs = [b.const(0.0) for __ in range(unroll)]
            for position in range(unroll):
                for c in range(channels):
                    weight = weights[(position + c) % len(weights)]
                    product = b.arith("fmul", inputs[c], weight)
                    b.arith_into(accs[position], "fadd", accs[position], product)
            zero = b.const(0.0)
            for position in range(unroll):
                b.arith_into(accs[position], "fmax", accs[position], zero)  # ReLU
            # Rotate inputs (line buffer shift) so rows chain.
            for c in range(channels - 1):
                inputs[c] = b.arith("fadd", inputs[c + 1], accs[c % unroll])
    b.ret()
    function = b.finish()
    verify_function(function)
    return function


def avg_pool2d_kernel(
    name: str,
    window: int = 3,
    unroll: int = 4,
    trip_counts: tuple[int, int] = (16, 16),
    seed: int = 0,
) -> Function:
    """Window-sum pooling: ``window**2`` adds per output into one
    accumulator (output sharing, Fig. 9), then a reciprocal multiply."""
    rng = random.Random(seed)
    b = IRBuilder(name)
    scale = b.const(round(1.0 / (window * window), 6))
    with b.loop(trip_count=trip_counts[0]):
        lanes = [b.const(float(i)) for i in range(window * window)]
        with b.loop(trip_count=trip_counts[1]):
            for __ in range(unroll):
                acc = b.const(0.0)
                for lane in lanes:
                    b.arith_into(acc, "fadd", acc, lane)
                out = b.arith("fmul", acc, scale)
                lanes[rng.randrange(len(lanes))] = out
    b.ret()
    function = b.finish()
    verify_function(function)
    return function


def max_pool2d_kernel(
    name: str,
    window: int = 2,
    unroll: int = 2,
    trip_counts: tuple[int, int] = (16, 16),
    seed: int = 0,
) -> Function:
    """Window-max pooling: fmax reduction trees."""
    rng = random.Random(seed)
    b = IRBuilder(name)
    with b.loop(trip_count=trip_counts[0]):
        lanes = [b.const(float(i)) for i in range(window * window * 2)]
        with b.loop(trip_count=trip_counts[1]):
            for __ in range(unroll):
                best = lanes[0]
                for lane in lanes[1:]:
                    best = b.arith("fmax", best, lane)
                lanes[rng.randrange(len(lanes))] = best
    b.ret()
    function = b.finish()
    verify_function(function)
    return function


def elementwise_kernel(name: str, ops: int = 24, trip_count: int = 64, seed: int = 0) -> Function:
    """Bias-add / batchnorm-style elementwise kernel ("other")."""
    rng = random.Random(seed)
    b = IRBuilder(name)
    bias = b.const(0.1)
    gamma = b.const(1.5)
    with b.loop(trip_count=trip_count):
        x = b.const(1.0)
        for __ in range(ops):
            x = b.arith(rng.choice(("fadd", "fmul")), x, bias if rng.random() < 0.5 else gamma)
    b.ret()
    function = b.finish()
    verify_function(function)
    return function


# ----------------------------------------------------------------------
# Suite assembly (Table I geometry: 42 / 6 / 6 / 3 relevant + irrelevant)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CnnCategory:
    name: str
    count: int


CNN_CATEGORIES = (
    CnnCategory("conv2d.relu", 42),
    CnnCategory("avg.pool2d", 6),
    CnnCategory("max.pool2d", 6),
    CnnCategory("other", 3),
)

#: Irrelevant activations filling the suite to 64 kernels (Fig. 1c shows
#: ~15% of CNN kernels contain no conflict-relevant instruction).
CNN_IRRELEVANT_COUNT = 64 - sum(c.count for c in CNN_CATEGORIES)


def cnn_suite(scale: float = 1.0, seed: int = 0) -> Suite:
    """The CNN-KERNEL suite.  ``scale`` multiplies per-category kernel
    counts (the kernels themselves keep their calibrated sizes)."""
    rng = random.Random(f"{seed}:cnn")
    suite = Suite("CNN-KERNEL")

    def add(name: str, category: str, function: Function) -> None:
        module = Module(name)
        module.add(function)
        suite.programs.append(SuiteProgram(name, category, module))

    count = max(2, round(42 * scale))
    # The conv2d.relu population comes from the real MobileNet-v1 layer
    # stack (std/dw/pw conv shapes), manually unrolled to sweep bank
    # pressure — see :mod:`repro.workloads.mobilenet`.
    from .mobilenet import mobilenet_conv_kernels

    for i, kernel in enumerate(mobilenet_conv_kernels(count)):
        add(f"conv2d.relu.{i}", "conv2d.relu", kernel)
    count = max(1, round(6 * scale))
    for i in range(count):
        add(
            f"avg.pool2d.{i}",
            "avg.pool2d",
            avg_pool2d_kernel(
                f"avg_pool2d_{i}",
                window=2 + (i % 2),
                unroll=3 + (i % 4),
                seed=rng.randrange(1 << 30),
            ),
        )
    for i in range(count):
        add(
            f"max.pool2d.{i}",
            "max.pool2d",
            max_pool2d_kernel(
                f"max_pool2d_{i}",
                window=2 + (i % 2),
                unroll=1 + (i % 3),
                seed=rng.randrange(1 << 30),
            ),
        )
    count = max(1, round(3 * scale))
    for i in range(count):
        add(
            f"other.{i}",
            "other",
            elementwise_kernel(f"elementwise_{i}", ops=16 + 8 * i, seed=rng.randrange(1 << 30)),
        )
    count = max(1, round(CNN_IRRELEVANT_COUNT * scale))
    for i in range(count):
        add(
            f"activation.{i}",
            "irrelevant",
            generate_scalar_function(f"activation_{i}", rng.randrange(1 << 30)),
        )
    return suite

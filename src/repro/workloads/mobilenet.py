"""MobileNet-v1 layer table and kernel derivation.

Table I says the CNN-KERNEL suite is "64 kernels from a Convolutional
Neural Network called MobileNet".  This module encodes the actual
MobileNet-v1 (224x224, alpha=1) layer stack and derives per-layer kernel
IR from it, so the suite's 42 conv2d.relu executables correspond to real
layer shapes (standard conv, depthwise conv, and pointwise conv, each
fused with ReLU), with pooling and softmax closing the network.

The layer table follows Howard et al., "MobileNets: Efficient
Convolutional Neural Networks for Mobile Vision Applications" (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.verifier import verify_function


@dataclass(frozen=True)
class ConvLayer:
    """One MobileNet convolution layer.

    Attributes:
        name: Layer name (conv1, conv2_dw, conv2_pw, ...).
        kind: "std" (full conv), "dw" (depthwise), or "pw" (pointwise 1x1).
        kernel: Spatial kernel size (3 or 1).
        in_channels / out_channels: Channel counts.
        spatial: Output feature-map edge length.
        stride: Convolution stride.
    """

    name: str
    kind: str
    kernel: int
    in_channels: int
    out_channels: int
    spatial: int
    stride: int = 1

    @property
    def macs_per_output(self) -> int:
        """Multiply-accumulates per output element."""
        if self.kind == "dw":
            return self.kernel * self.kernel
        return self.kernel * self.kernel * self.in_channels


#: MobileNet-v1 (224, alpha=1.0) convolution stack: 1 standard conv +
#: 13 depthwise-separable blocks (dw + pw each) = 27 conv layers.
MOBILENET_V1_LAYERS: tuple[ConvLayer, ...] = (
    ConvLayer("conv1", "std", 3, 3, 32, 112, 2),
    ConvLayer("conv2_dw", "dw", 3, 32, 32, 112),
    ConvLayer("conv2_pw", "pw", 1, 32, 64, 112),
    ConvLayer("conv3_dw", "dw", 3, 64, 64, 56, 2),
    ConvLayer("conv3_pw", "pw", 1, 64, 128, 56),
    ConvLayer("conv4_dw", "dw", 3, 128, 128, 56),
    ConvLayer("conv4_pw", "pw", 1, 128, 128, 56),
    ConvLayer("conv5_dw", "dw", 3, 128, 128, 28, 2),
    ConvLayer("conv5_pw", "pw", 1, 128, 256, 28),
    ConvLayer("conv6_dw", "dw", 3, 256, 256, 28),
    ConvLayer("conv6_pw", "pw", 1, 256, 256, 28),
    ConvLayer("conv7_dw", "dw", 3, 256, 256, 14, 2),
    ConvLayer("conv7_pw", "pw", 1, 256, 512, 14),
    ConvLayer("conv8_dw", "dw", 3, 512, 512, 14),
    ConvLayer("conv8_pw", "pw", 1, 512, 512, 14),
    ConvLayer("conv9_dw", "dw", 3, 512, 512, 14),
    ConvLayer("conv9_pw", "pw", 1, 512, 512, 14),
    ConvLayer("conv10_dw", "dw", 3, 512, 512, 14),
    ConvLayer("conv10_pw", "pw", 1, 512, 512, 14),
    ConvLayer("conv11_dw", "dw", 3, 512, 512, 14),
    ConvLayer("conv11_pw", "pw", 1, 512, 512, 14),
    ConvLayer("conv12_dw", "dw", 3, 512, 512, 14),
    ConvLayer("conv12_pw", "pw", 1, 512, 512, 14),
    ConvLayer("conv13_dw", "dw", 3, 512, 512, 7, 2),
    ConvLayer("conv13_pw", "pw", 1, 512, 1024, 7),
    ConvLayer("conv14_dw", "dw", 3, 1024, 1024, 7),
    ConvLayer("conv14_pw", "pw", 1, 1024, 1024, 7),
)


def layer_kernel(
    layer: ConvLayer,
    *,
    unroll: int = 4,
    reduction_width: int | None = None,
) -> Function:
    """Derive the inner-loop kernel IR for one MobileNet layer.

    The generated function is the vectorized inner product the compiler
    actually sees: per output position, ``reduction_width`` input/weight
    MACs accumulate (capped — the register file holds a tile of the
    reduction, not 4.6k channels), fused with ReLU; *unroll* output
    positions are produced per loop body (the paper's manual unrolling).

    Loop trip counts reflect the layer's real spatial extent, so the
    conflict *cost* model sees genuine hot/cold structure.
    """
    if reduction_width is None:
        # Tile of the reduction held in registers, by layer kind: a
        # depthwise conv reduces over its 9 taps exactly; pointwise and
        # standard convs tile their (much deeper) channel reduction.
        if layer.kind == "dw":
            reduction_width = layer.kernel * layer.kernel
        elif layer.kind == "pw":
            reduction_width = min(16, max(4, layer.in_channels // 64))
        else:
            reduction_width = min(12, layer.macs_per_output)
    builder = IRBuilder(f"mobilenet_{layer.name}")
    weights = [
        builder.const(round(0.01 * (i + 1), 4)) for i in range(reduction_width)
    ]
    spatial_trip = max(2, min(layer.spatial, 28))
    with builder.loop(trip_count=spatial_trip):  # output rows (tile)
        inputs = [builder.const(float(i)) for i in range(reduction_width)]
        with builder.loop(trip_count=spatial_trip):  # output cols (tile)
            accs = [builder.const(0.0) for __ in range(unroll)]
            for position in range(unroll):
                for lane in range(reduction_width):
                    product = builder.arith(
                        "fmul", inputs[(lane + position) % reduction_width],
                        weights[lane],
                    )
                    builder.arith_into(accs[position], "fadd", accs[position], product)
            zero = builder.const(0.0)
            for position in range(unroll):
                builder.arith_into(accs[position], "fmax", accs[position], zero)
            # Shift the input window (line buffer) so rows chain.
            for lane in range(reduction_width - 1):
                inputs[lane] = builder.arith(
                    "fadd", inputs[lane + 1], accs[lane % unroll]
                )
    builder.ret()
    function = builder.finish()
    function.attrs["layer"] = layer
    verify_function(function)
    return function


def mobilenet_conv_kernels(count: int = 42, base_unroll: int = 2) -> list[Function]:
    """The conv2d.relu population of Table I: *count* kernels drawn from
    the 27-layer stack with varying unroll factors (the paper unrolls
    manually to create different levels of bank pressure)."""
    kernels: list[Function] = []
    index = 0
    while len(kernels) < count:
        layer = MOBILENET_V1_LAYERS[index % len(MOBILENET_V1_LAYERS)]
        # Sweep unroll across the population (and again on wrap-around)
        # so the suite covers a range of bank-pressure levels.
        unroll = base_unroll + (index % 5) + (index // len(MOBILENET_V1_LAYERS)) * 2
        kernel = layer_kernel(layer, unroll=max(1, unroll))
        kernel.name = f"{kernel.name}_u{unroll}"
        kernels.append(kernel)
        index += 1
    return kernels

"""Slot indexing: a linear numbering of instructions for live intervals.

Each instruction gets an even *slot* ``2 * position`` in layout order.
Within one instruction, register **reads happen at the slot** and register
**writes happen at slot + 1**.  With half-open interval segments this gives
the classic allocator semantics: a source that dies at an instruction does
not interfere with that instruction's destination (they may share a
register), while two sources read by the same instruction do overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction


@dataclass
class SlotIndexes:
    """Bidirectional mapping instruction <-> slot for one function.

    Attributes:
        function: The indexed function.
        slot_of: id(instruction) -> slot (instructions are not hashable by
            value; identity is the right key since the IR is a mutable
            object graph).
        instr_at: slot -> instruction.
        block_range: block label -> (start_slot, end_slot) where the block
            occupies the half-open slot range [start, end).
    """

    function: Function
    slot_of: dict[int, int] = field(default_factory=dict)
    instr_at: dict[int, Instruction] = field(default_factory=dict)
    block_range: dict[str, tuple[int, int]] = field(default_factory=dict)

    @classmethod
    def build(cls, function: Function) -> "SlotIndexes":
        indexes = cls(function)
        position = 0
        for block in function.blocks:
            start = 2 * position
            for instr in block:
                slot = 2 * position
                indexes.slot_of[id(instr)] = slot
                indexes.instr_at[slot] = instr
                position += 1
            end = 2 * position
            indexes.block_range[block.label] = (start, end)
        return indexes

    # ------------------------------------------------------------------
    def slot(self, instr: Instruction) -> int:
        """The slot of *instr* (reads at this value, writes at +1)."""
        return self.slot_of[id(instr)]

    def read_point(self, instr: Instruction) -> int:
        return self.slot(instr)

    def write_point(self, instr: Instruction) -> int:
        return self.slot(instr) + 1

    def instruction(self, slot: int) -> Instruction:
        """The instruction whose slot is *slot* (must be even)."""
        return self.instr_at[slot]

    def block_of_slot(self, slot: int) -> BasicBlock:
        """The block containing *slot*."""
        for label, (start, end) in self.block_range.items():
            if start <= slot < end:
                return self.function.block(label)
        raise KeyError(f"slot {slot} out of range")

    @property
    def last_slot(self) -> int:
        """One past the final write point of the function."""
        return 2 * len(self.instr_at)

    def __len__(self) -> int:
        return len(self.instr_at)

"""Same Displacement Graph (SDG) for the DSA's subgroup alignment (§III-C).

``G_SDG = (V, A)``: vertices are registers that require subgroup
alignment; a directed edge runs from each input operand to each output
operand of an aligned instruction — connected registers must receive the
same subgroup displacement.

The (weakly) connected components of the SDG are the *subgroups* tracked
by Algorithm 2; components that grow large cause unbalanced subgroup
assignment and are cut by the splitting heuristic of Figs. 8/9, which
targets "centered" vertices: high out-degree (input sharing, one value
feeding many operations) or high in-degree (output sharing, a reduction
accumulator written by many operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.instruction import Instruction, OpKind
from ..ir.types import RegClass, VirtualRegister


@dataclass
class SameDisplacementGraph:
    """Directed alignment graph over virtual registers."""

    regclass: RegClass | None
    out_edges: dict[VirtualRegister, set[VirtualRegister]] = field(default_factory=dict)
    in_edges: dict[VirtualRegister, set[VirtualRegister]] = field(default_factory=dict)
    #: (src, dst) -> instructions inducing the edge.
    edge_instrs: dict[tuple[VirtualRegister, VirtualRegister], list[Instruction]] = field(
        default_factory=dict
    )

    @classmethod
    def build(
        cls,
        function: Function,
        regclass: RegClass | None = None,
        flat=None,
    ) -> "SameDisplacementGraph":
        graph = cls(regclass)
        if flat is not None:
            graph._build_flat(flat)
            return graph
        for _, instr in function.instructions():
            if not cls.needs_alignment(instr, regclass):
                continue
            inputs = [
                r for r in instr.bankable_reads(regclass)
                if isinstance(r, VirtualRegister)
            ]
            outputs = [
                d for d in instr.vreg_defs()
                if d.regclass.bankable
                and (regclass is None or d.regclass == regclass)
            ]
            for dst in outputs:
                graph._add_node(dst)
            for src in inputs:
                graph._add_node(src)
                for dst in outputs:
                    graph.add_edge(src, dst, instr)
        return graph

    def _build_flat(self, flat) -> None:
        """Flat-array scan: same nodes/edges in the same insertion order,
        without re-deriving operand tuples per instruction."""
        arith = OpKind.ARITH
        kinds = flat.kinds
        regs = flat.regs
        reg_virtual = flat.reg_virtual
        def_start, def_ids = flat.def_start, flat.def_ids
        regclass = self.regclass
        for i in range(len(flat.instrs)):
            if kinds[i] is not arith:
                continue
            d0, d1 = def_start[i], def_start[i + 1]
            vdefs = [
                def_ids[j] for j in range(d0, d1) if reg_virtual[def_ids[j]]
            ]
            if not vdefs:
                continue
            bank = flat.bank_reads(i, regclass)
            if not bank:
                continue
            inputs = [rid for rid in bank if reg_virtual[rid]]
            outputs = [
                rid for rid in vdefs
                if regs[rid].regclass.bankable
                and (regclass is None or regs[rid].regclass == regclass)
            ]
            instr = flat.instrs[i]
            for dst in outputs:
                self._add_node(regs[dst])
            for src in inputs:
                self._add_node(regs[src])
                for dst in outputs:
                    self.add_edge(regs[src], regs[dst], instr)

    @staticmethod
    def needs_alignment(instr: Instruction, regclass: RegClass | None = None) -> bool:
        """The DSA aligns the operands of every vector arithmetic
        instruction (its ALUs read all ports at one displacement)."""
        if instr.kind is not OpKind.ARITH:
            return False
        return len(instr.bankable_reads(regclass)) >= 1 and len(instr.vreg_defs()) >= 1

    # ------------------------------------------------------------------
    def _add_node(self, reg: VirtualRegister) -> None:
        self.out_edges.setdefault(reg, set())
        self.in_edges.setdefault(reg, set())

    def add_edge(self, src: VirtualRegister, dst: VirtualRegister, instr: Instruction | None = None) -> None:
        if src == dst:
            return  # accumulator updates (a = op a, b) impose no new constraint
        self._add_node(src)
        self._add_node(dst)
        self.out_edges[src].add(dst)
        self.in_edges[dst].add(src)
        if instr is not None:
            self.edge_instrs.setdefault((src, dst), []).append(instr)

    # ------------------------------------------------------------------
    def nodes(self) -> list[VirtualRegister]:
        return list(self.out_edges)

    def out_degree(self, reg: VirtualRegister) -> int:
        return len(self.out_edges.get(reg, ()))

    def in_degree(self, reg: VirtualRegister) -> int:
        return len(self.in_edges.get(reg, ()))

    def neighbors(self, reg: VirtualRegister) -> set[VirtualRegister]:
        """Undirected neighborhood (alignment is symmetric)."""
        return self.out_edges.get(reg, set()) | self.in_edges.get(reg, set())

    def components(self) -> list[set[VirtualRegister]]:
        """Weakly connected components: the alignment subgroups."""
        seen: set[VirtualRegister] = set()
        result = []
        for root in self.out_edges:
            if root in seen:
                continue
            comp = {root}
            stack = [root]
            seen.add(root)
            while stack:
                node = stack.pop()
                for nb in self.neighbors(node):
                    if nb not in seen:
                        seen.add(nb)
                        comp.add(nb)
                        stack.append(nb)
            result.append(comp)
        return result

    def component_of(self, reg: VirtualRegister) -> set[VirtualRegister]:
        """The subgroup containing *reg* (singleton if isolated)."""
        if reg not in self.out_edges:
            return {reg}
        for comp in self.components():
            if reg in comp:
                return comp
        raise AssertionError("unreachable: node missing from its own components")

    # ------------------------------------------------------------------
    # Splitting support (Figs. 8 / 9)
    # ------------------------------------------------------------------
    def sharing_centers(
        self, component: set[VirtualRegister], threshold: int
    ) -> list[tuple[VirtualRegister, str, int]]:
        """Centered vertices of *component* worth splitting.

        Returns (register, kind, fanout) triples where kind is
        ``"input_sharing"`` (high out-degree) or ``"output_sharing"``
        (high in-degree), sorted by decreasing fanout with ties broken by
        register id.  *component* is a set (hash-ordered), so both the
        iteration and the sort tie-break must be pinned to register ids —
        otherwise the split pass picks different equal-fanout centers
        under different ``PYTHONHASHSEED`` values and the allocated
        output drifts run to run.
        """
        centers = []
        for reg in sorted(component, key=lambda r: r.vid):
            out_deg = self.out_degree(reg)
            in_deg = self.in_degree(reg)
            if out_deg >= threshold:
                centers.append((reg, "input_sharing", out_deg))
            if in_deg >= threshold:
                centers.append((reg, "output_sharing", in_deg))
        centers.sort(key=lambda c: (-c[2], c[0].vid, c[1]))
        return centers

    def __len__(self) -> int:
        return len(self.out_edges)

    def __contains__(self, reg: VirtualRegister) -> bool:
        return reg in self.out_edges

"""Register and bank pressure tracking.

The *bank pressure count* is the heart of the PresCount heuristic
(§III-B): for a bank, it is the maximum number of simultaneously live
registers already assigned to that bank.  When several banks are equally
conflict-free for a node, the assigner picks the bank whose pressure count
grows the least — keeping every per-bank sub-RIG colorable and avoiding
the "unbalanced bank assignment" failure of §II-B.

:class:`BankPressureTracker` maintains one sweep structure per bank and
answers two queries:

* ``pressure(bank)`` — the current max overlap in the bank;
* ``pressure_if_assigned(bank, interval)`` — the max overlap the bank
  would have if *interval* were added (without mutating state).

With the flat core active (``REPRO_FAST`` != ``off``, resolved once at
tracker creation) each bank keeps a per-slot *counts array* instead of
sorted endpoint lists: ``counts[s]`` is exactly ``active_at(s)``, so the
max within an interval's coverage is a slice max — the same value the
endpoint-probing implementation computes, since the overlap count only
changes at stored segment boundaries.  ``REPRO_FAST=numpy`` vectorizes
the slice updates and maxima; ``python`` uses plain lists.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..ir.types import VirtualRegister
from .intervals import LiveInterval


@dataclass
class _BankState:
    """Sweep events of one bank: sorted endpoint lists or a counts array."""

    starts: list[int] = field(default_factory=list)
    ends: list[int] = field(default_factory=list)
    max_pressure: int = 0
    members: set[VirtualRegister] = field(default_factory=set)
    #: Resolved REPRO_FAST mode captured at creation (never re-read per
    #: query — an env probe in the inner loop would dominate the query).
    mode: str = "off"
    np: object = None
    counts: object = None  # list[int] | numpy array, grown on demand

    def add(self, interval: LiveInterval) -> None:
        if self.mode != "off":
            self._add_counts(interval)
            self.members.add(interval.reg)
            return
        for seg in interval.segments:
            bisect.insort(self.starts, seg.start)
            bisect.insort(self.ends, seg.end)
        self.members.add(interval.reg)
        self.max_pressure = self._sweep_max()

    # ------------------------------------------------------------------
    # Counts-array fast path
    # ------------------------------------------------------------------
    def _grow(self, need: int) -> None:
        if self.np is not None:
            old = self.counts
            size = 0 if old is None else len(old)
            if need > size:
                new = self.np.zeros(max(need, 2 * size, 64), dtype=self.np.int32)
                if size:
                    new[:size] = old
                self.counts = new
        else:
            if self.counts is None:
                self.counts = []
            if need > len(self.counts):
                self.counts.extend([0] * (need - len(self.counts)))

    def _add_counts(self, interval: LiveInterval) -> None:
        peak = self.max_pressure
        self._grow(interval.segments[-1].end if interval.segments else 0)
        counts = self.counts
        if self.np is not None:
            for seg in interval.segments:
                view = counts[seg.start: seg.end]
                view += 1
                m = int(view.max())
                if m > peak:
                    peak = m
        else:
            for seg in interval.segments:
                for s in range(seg.start, seg.end):
                    c = counts[s] + 1
                    counts[s] = c
                    if c > peak:
                        peak = c
        self.max_pressure = peak

    def _counts_len(self) -> int:
        return 0 if self.counts is None else len(self.counts)

    def _sweep_max(self) -> int:
        """Max simultaneous overlap among stored segments."""
        peak = active = 0
        i = j = 0
        while i < len(self.starts):
            if self.starts[i] < self.ends[j]:
                active += 1
                peak = max(peak, active)
                i += 1
            else:
                active -= 1
                j += 1
        return peak

    def active_at(self, slot: int) -> int:
        """Number of stored segments covering *slot*."""
        if self.mode != "off":
            if self.counts is None or slot >= len(self.counts):
                return 0
            return int(self.counts[slot])
        started = bisect.bisect_right(self.starts, slot)
        ended = bisect.bisect_right(self.ends, slot)
        return started - ended

    def max_active_within(self, interval: LiveInterval) -> int:
        """Max overlap restricted to slots covered by *interval*.

        The overlap count can only change at segment endpoints, so it
        suffices to probe the interval's own boundaries and every stored
        start point falling inside the interval.  The counts array makes
        this a slice max over the same probe set (every covered slot),
        yielding the identical value.
        """
        best = 0
        if self.mode != "off":
            counts = self.counts
            if counts is None:
                return 0
            size = len(counts)
            if self.np is not None:
                for seg in interval.segments:
                    hi = seg.end if seg.end < size else size
                    if seg.start < hi:
                        m = int(counts[seg.start: hi].max())
                        if m > best:
                            best = m
            else:
                for seg in interval.segments:
                    hi = seg.end if seg.end < size else size
                    if seg.start < hi:
                        m = max(counts[seg.start: hi])
                        if m > best:
                            best = m
            return best
        for seg in interval.segments:
            best = max(best, self.active_at(seg.start))
            lo = bisect.bisect_left(self.starts, seg.start)
            hi = bisect.bisect_left(self.starts, seg.end)
            for idx in range(lo, hi):
                best = max(best, self.active_at(self.starts[idx]))
        return best


@dataclass
class BankPressureTracker:
    """Per-bank live-range overlap counts for PresCount's heuristic."""

    num_banks: int
    banks: list[_BankState] = field(default_factory=list)

    def __post_init__(self):
        if self.num_banks < 1:
            raise ValueError("need at least one bank")
        if not self.banks:
            from ..ir.flat import fast_mode, numpy_or_none

            mode = fast_mode()
            np = numpy_or_none()
            self.banks = [
                _BankState(mode=mode, np=np) for __ in range(self.num_banks)
            ]

    # ------------------------------------------------------------------
    def assign(self, bank: int, interval: LiveInterval) -> None:
        """Record that *interval*'s register is now assigned to *bank*."""
        self.banks[bank].add(interval)

    def pressure(self, bank: int) -> int:
        """Current bank pressure count of *bank*."""
        return self.banks[bank].max_pressure

    def pressure_if_assigned(self, bank: int, interval: LiveInterval) -> int:
        """Bank pressure count *bank* would reach after adding *interval*."""
        state = self.banks[bank]
        return max(state.max_pressure, state.max_active_within(interval) + 1)

    def added_pressure(self, bank: int, interval: LiveInterval) -> int:
        """How much the bank's pressure count would grow (>= 0)."""
        return self.pressure_if_assigned(bank, interval) - self.banks[bank].max_pressure

    def members(self, bank: int) -> set[VirtualRegister]:
        return set(self.banks[bank].members)

    def occupancy(self, bank: int) -> int:
        """Number of registers assigned to *bank* (for free-reg balancing)."""
        return len(self.banks[bank].members)

    def least_pressured_banks(self, interval: LiveInterval) -> list[int]:
        """All banks sorted by resulting pressure, then occupancy, then id."""
        return sorted(
            range(self.num_banks),
            key=lambda b: (
                self.pressure_if_assigned(b, interval),
                self.occupancy(b),
                b,
            ),
        )

"""Register and bank pressure tracking.

The *bank pressure count* is the heart of the PresCount heuristic
(§III-B): for a bank, it is the maximum number of simultaneously live
registers already assigned to that bank.  When several banks are equally
conflict-free for a node, the assigner picks the bank whose pressure count
grows the least — keeping every per-bank sub-RIG colorable and avoiding
the "unbalanced bank assignment" failure of §II-B.

:class:`BankPressureTracker` maintains one sweep structure per bank and
answers two queries:

* ``pressure(bank)`` — the current max overlap in the bank;
* ``pressure_if_assigned(bank, interval)`` — the max overlap the bank
  would have if *interval* were added (without mutating state).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..ir.types import VirtualRegister
from .intervals import LiveInterval


@dataclass
class _BankState:
    """Sweep events of one bank: sorted endpoint lists."""

    starts: list[int] = field(default_factory=list)
    ends: list[int] = field(default_factory=list)
    max_pressure: int = 0
    members: set[VirtualRegister] = field(default_factory=set)

    def add(self, interval: LiveInterval) -> None:
        for seg in interval.segments:
            bisect.insort(self.starts, seg.start)
            bisect.insort(self.ends, seg.end)
        self.members.add(interval.reg)
        self.max_pressure = self._sweep_max()

    def _sweep_max(self) -> int:
        """Max simultaneous overlap among stored segments."""
        peak = active = 0
        i = j = 0
        while i < len(self.starts):
            if self.starts[i] < self.ends[j]:
                active += 1
                peak = max(peak, active)
                i += 1
            else:
                active -= 1
                j += 1
        return peak

    def active_at(self, slot: int) -> int:
        """Number of stored segments covering *slot*."""
        started = bisect.bisect_right(self.starts, slot)
        ended = bisect.bisect_right(self.ends, slot)
        return started - ended

    def max_active_within(self, interval: LiveInterval) -> int:
        """Max overlap restricted to slots covered by *interval*.

        The overlap count can only change at segment endpoints, so it
        suffices to probe the interval's own boundaries and every stored
        start point falling inside the interval.
        """
        best = 0
        for seg in interval.segments:
            best = max(best, self.active_at(seg.start))
            lo = bisect.bisect_left(self.starts, seg.start)
            hi = bisect.bisect_left(self.starts, seg.end)
            for idx in range(lo, hi):
                best = max(best, self.active_at(self.starts[idx]))
        return best


@dataclass
class BankPressureTracker:
    """Per-bank live-range overlap counts for PresCount's heuristic."""

    num_banks: int
    banks: list[_BankState] = field(default_factory=list)

    def __post_init__(self):
        if self.num_banks < 1:
            raise ValueError("need at least one bank")
        if not self.banks:
            self.banks = [_BankState() for __ in range(self.num_banks)]

    # ------------------------------------------------------------------
    def assign(self, bank: int, interval: LiveInterval) -> None:
        """Record that *interval*'s register is now assigned to *bank*."""
        self.banks[bank].add(interval)

    def pressure(self, bank: int) -> int:
        """Current bank pressure count of *bank*."""
        return self.banks[bank].max_pressure

    def pressure_if_assigned(self, bank: int, interval: LiveInterval) -> int:
        """Bank pressure count *bank* would reach after adding *interval*."""
        state = self.banks[bank]
        return max(state.max_pressure, state.max_active_within(interval) + 1)

    def added_pressure(self, bank: int, interval: LiveInterval) -> int:
        """How much the bank's pressure count would grow (>= 0)."""
        return self.pressure_if_assigned(bank, interval) - self.banks[bank].max_pressure

    def members(self, bank: int) -> set[VirtualRegister]:
        return set(self.banks[bank].members)

    def occupancy(self, bank: int) -> int:
        """Number of registers assigned to *bank* (for free-reg balancing)."""
        return len(self.banks[bank].members)

    def least_pressured_banks(self, interval: LiveInterval) -> list[int]:
        """All banks sorted by resulting pressure, then occupancy, then id."""
        return sorted(
            range(self.num_banks),
            key=lambda b: (
                self.pressure_if_assigned(b, interval),
                self.occupancy(b),
                b,
            ),
        )

"""Live intervals: per-register unions of half-open slot segments.

Built from block liveness the same way LLVM's LiveIntervals pass does:
walk each block backwards seeded with its live-out set, ending segments at
write points and beginning them at read points (see
:mod:`repro.analysis.slots` for the read/write point convention).

The interval objects are the currency of the whole allocator stack: the
RIG, the bank pressure counter, the greedy allocator's queues, and the
spiller all operate on :class:`LiveInterval`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..ir.cfg import CFG
from ..ir.function import Function
from ..ir.types import Register, RegClass, VirtualRegister
from .liveness import Liveness
from .slots import SlotIndexes


@dataclass(frozen=True)
class Segment:
    """One half-open live segment [start, end) in slot coordinates."""

    start: int
    end: int

    def __post_init__(self):
        if self.start >= self.end:
            raise ValueError(f"empty segment [{self.start}, {self.end})")

    def overlaps(self, other: "Segment") -> bool:
        return self.start < other.end and other.start < self.end

    def contains(self, slot: int) -> bool:
        return self.start <= slot < self.end

    def __repr__(self) -> str:
        return f"[{self.start},{self.end})"


@dataclass
class LiveInterval:
    """The live interval of one register: sorted, disjoint segments.

    Attributes:
        reg: The register this interval describes.
        segments: Sorted by start, pairwise disjoint, adjacent segments
            merged.
        use_slots: Read points of all uses (sorted, may repeat per instr).
        def_slots: Write points of all defs (sorted).
        weight: Spill weight; filled in by the cost model / allocator.
    """

    reg: Register
    segments: list[Segment] = field(default_factory=list)
    use_slots: list[int] = field(default_factory=list)
    def_slots: list[int] = field(default_factory=list)
    weight: float = 0.0
    #: Lazy coverage bitmask (bit *s* set iff slot *s* is covered); the
    #: flat core's O(1) overlap currency.  Excluded from equality so two
    #: value-equal intervals stay equal whether or not the cache is warm.
    _mask: int | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_segment(self, start: int, end: int) -> None:
        """Insert [start, end), merging with overlapping/adjacent segments."""
        if start >= end:
            raise ValueError(f"empty segment [{start}, {end})")
        starts = [s.start for s in self.segments]
        idx = bisect.bisect_left(starts, start)
        # Absorb any segment that overlaps or touches the new one.
        lo = idx
        while lo > 0 and self.segments[lo - 1].end >= start:
            lo -= 1
        hi = idx
        while hi < len(self.segments) and self.segments[hi].start <= end:
            hi += 1
        if lo < hi:
            start = min(start, self.segments[lo].start)
            end = max(end, self.segments[hi - 1].end)
        self.segments[lo:hi] = [Segment(start, end)]
        self._mask = None

    # ------------------------------------------------------------------
    # Coverage bitmask
    # ------------------------------------------------------------------
    @property
    def mask(self) -> int:
        """Coverage bitmask: ``mask_a & mask_b != 0`` iff the intervals
        overlap — exactly :meth:`overlaps`, in one big-int AND."""
        m = self._mask
        if m is None:
            m = 0
            for seg in self.segments:
                m |= (1 << seg.end) - (1 << seg.start)
            self._mask = m
        return m

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def start(self) -> int:
        return self.segments[0].start

    @property
    def end(self) -> int:
        return self.segments[-1].end

    @property
    def size(self) -> int:
        """Total number of covered slots (not the span)."""
        return sum(s.end - s.start for s in self.segments)

    @property
    def span(self) -> int:
        return self.end - self.start

    def covers(self, slot: int) -> bool:
        idx = bisect.bisect_right([s.start for s in self.segments], slot) - 1
        return idx >= 0 and self.segments[idx].contains(slot)

    def overlaps(self, other: "LiveInterval") -> bool:
        """True when any segments of self and other intersect."""
        i = j = 0
        mine, theirs = self.segments, other.segments
        while i < len(mine) and j < len(theirs):
            a, b = mine[i], theirs[j]
            if a.overlaps(b):
                return True
            if a.end <= b.start:
                i += 1
            else:
                j += 1
        return False

    def overlap_amount(self, other: "LiveInterval") -> int:
        """Number of slots covered by both intervals."""
        total = 0
        i = j = 0
        mine, theirs = self.segments, other.segments
        while i < len(mine) and j < len(theirs):
            a, b = mine[i], theirs[j]
            lo, hi = max(a.start, b.start), min(a.end, b.end)
            if lo < hi:
                total += hi - lo
            if a.end <= b.end:
                i += 1
            else:
                j += 1
        return total

    def is_empty(self) -> bool:
        return not self.segments

    def __repr__(self) -> str:
        segs = "".join(repr(s) for s in self.segments[:4])
        more = "..." if len(self.segments) > 4 else ""
        return f"LiveInterval({self.reg!r} {segs}{more} w={self.weight:.1f})"


@dataclass
class LiveIntervals:
    """All live intervals of one function, keyed by register."""

    function: Function
    slots: SlotIndexes
    liveness: Liveness
    intervals: dict[Register, LiveInterval] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        function: Function,
        cfg: CFG | None = None,
        slots: SlotIndexes | None = None,
        liveness: Liveness | None = None,
        flat=None,
    ) -> "LiveIntervals":
        """Build all intervals.

        When *flat* (a :class:`~repro.ir.flat.FlatFunction`) is given,
        the walk runs on interned rid arrays and constructs each
        interval's canonical segment list in one shot — the result is
        value-identical to the object-graph walk (same canonical merged
        segments, same sorted use/def slots).
        """
        if cfg is None:
            cfg = CFG.build(function)
        if slots is None:
            slots = SlotIndexes.build(function)
        if liveness is None:
            liveness = Liveness.build(function, cfg, flat=flat)
        analysis = cls(function, slots, liveness)
        if flat is not None:
            analysis._compute_flat(flat)
        else:
            analysis._compute()
        return analysis

    def _interval(self, reg: Register) -> LiveInterval:
        if reg not in self.intervals:
            self.intervals[reg] = LiveInterval(reg)
        return self.intervals[reg]

    def _compute(self) -> None:
        for block in self.function.blocks:
            block_start, block_end = self.slots.block_range[block.label]
            if block_start == block_end:
                continue  # empty block
            # `live_end[r]`: the slot up to which r must stay live, walking
            # backwards.  Seed with live-out registers extending to the
            # block end boundary.
            live_end: dict[Register, int] = {
                reg: block_end for reg in self.liveness.live_out[block.label]
            }
            for instr in reversed(block.instructions):
                read = self.slots.read_point(instr)
                write = self.slots.write_point(instr)
                for reg in instr.reg_defs():
                    interval = self._interval(reg)
                    interval.def_slots.append(write)
                    end = live_end.pop(reg, None)
                    if end is None:
                        # Dead def: live for just the write point.
                        interval.add_segment(write, write + 1)
                    else:
                        interval.add_segment(write, end)
                for reg in instr.reg_uses():
                    self._interval(reg).use_slots.append(read)
                    # The value must cover its read point; liveness extends
                    # backwards from here (end = read + 1 covers slot `read`).
                    live_end.setdefault(reg, read + 1)
            # Whatever is still pending is live-in: extend to block start.
            for reg, end in live_end.items():
                self._interval(reg).add_segment(block_start, end)
        for interval in self.intervals.values():
            interval.use_slots.sort()
            interval.def_slots.sort()

    def _compute_flat(self, flat) -> None:
        """The same backward walk as :meth:`_compute`, on rid arrays.

        Raw ``(start, end)`` pairs are collected per rid and canonicalized
        once (sort + touching merge) — the result equals the incremental
        :meth:`LiveInterval.add_segment` insertion order-independently,
        because both produce the maximal union of touching ranges.  The
        interval dict is keyed in deterministic first-touch walk order;
        downstream passes are provably order-independent (the object walk
        seeds from frozensets, whose iteration order is hash-seed
        dependent, yet outputs are seed-stable).
        """
        liveness = self.liveness
        live_out_masks = getattr(liveness, "_live_out_masks", None)
        if live_out_masks is None or getattr(liveness, "_flat", None) is not flat:
            reg_ids = flat.reg_ids
            live_out_masks = []
            for label in flat.block_labels:
                m = 0
                for reg in liveness.live_out[label]:
                    m |= 1 << reg_ids[reg]
                live_out_masks.append(m)
        nregs = flat.num_regs
        seg_lists: list[list | None] = [None] * nregs
        use_lists: list[list | None] = [None] * nregs
        def_lists: list[list | None] = [None] * nregs
        order: list[int] = []
        use_start, use_ids = flat.use_start, flat.use_ids
        def_start, def_ids = flat.def_start, flat.def_ids

        def touch(rid: int) -> list:
            segs = seg_lists[rid]
            if segs is None:
                segs = seg_lists[rid] = []
                use_lists[rid] = []
                def_lists[rid] = []
                order.append(rid)
            return segs

        for b, (bstart, bend) in enumerate(flat.block_bounds):
            if bstart == bend:
                continue  # empty block
            block_start = 2 * bstart
            block_end = 2 * bend
            live_end: dict[int, int] = {}
            m = live_out_masks[b]
            while m:
                low = m & -m
                live_end[low.bit_length() - 1] = block_end
                m &= m - 1
            for i in range(bend - 1, bstart - 1, -1):
                read = 2 * i
                write = read + 1
                for j in range(def_start[i], def_start[i + 1]):
                    rid = def_ids[j]
                    segs = touch(rid)
                    def_lists[rid].append(write)
                    end = live_end.pop(rid, None)
                    segs.append((write, write + 1 if end is None else end))
                for j in range(use_start[i], use_start[i + 1]):
                    rid = use_ids[j]
                    touch(rid)
                    use_lists[rid].append(read)
                    if rid not in live_end:
                        live_end[rid] = read + 1
            for rid, end in live_end.items():
                touch(rid).append((block_start, end))

        intervals = self.intervals
        regs = flat.regs
        for rid in order:
            raw = seg_lists[rid]
            raw.sort()
            merged: list[Segment] = []
            cur_s, cur_e = raw[0]
            for s, e in raw[1:]:
                if s <= cur_e:
                    if e > cur_e:
                        cur_e = e
                else:
                    merged.append(Segment(cur_s, cur_e))
                    cur_s, cur_e = s, e
            merged.append(Segment(cur_s, cur_e))
            uses = use_lists[rid]
            uses.sort()
            defs = def_lists[rid]
            defs.sort()
            reg = regs[rid]
            intervals[reg] = LiveInterval(reg, merged, uses, defs)

    # ------------------------------------------------------------------
    def of(self, reg: Register) -> LiveInterval:
        return self.intervals[reg]

    def vreg_intervals(self, regclass: RegClass | None = None) -> list[LiveInterval]:
        """Intervals of virtual registers, optionally filtered by class."""
        result = []
        for reg, interval in self.intervals.items():
            if not isinstance(reg, VirtualRegister):
                continue
            if regclass is not None and reg.regclass != regclass:
                continue
            result.append(interval)
        return result

    def max_pressure(self, regclass: RegClass | None = None) -> int:
        """Maximum number of simultaneously live vregs (register pressure).

        This is the quantity Algorithm 1 compares against THRES
        (``OverallRegPressure``).  Computed with an endpoint sweep over all
        segments.
        """
        events: list[tuple[int, int]] = []
        for interval in self.vreg_intervals(regclass):
            for seg in interval.segments:
                events.append((seg.start, 1))
                events.append((seg.end, -1))
        events.sort()
        pressure = peak = 0
        for _, delta in events:
            pressure += delta
            peak = max(peak, pressure)
        return peak

    def __contains__(self, reg: Register) -> bool:
        return reg in self.intervals

    def __len__(self) -> int:
        return len(self.intervals)

"""Chordal graph machinery: MCS ordering, chordality check, and optimal
coloring for chordal graphs.

The paper's related work traces the SSA-based allocation line (Hack &
Goos: SSA interference graphs are chordal; Pereira & Palsberg: most Java
interference graphs are chordal), where coloring is polynomial.  Our live
intervals induce *interval graphs* over the linearized slot space —
interval graphs are chordal — so this module supplies:

* :func:`maximum_cardinality_search` — an MCS vertex order;
* :func:`is_chordal` — verifies the MCS order is a perfect elimination
  order (true for every RIG built from :class:`LiveIntervals`);
* :func:`chordal_coloring` — greedy coloring along the MCS order, which
  is *optimal* on chordal graphs (uses exactly max-clique colors).

Uses: a ground-truth register bound in tests (chromatic number ==
register pressure for interval graphs) and an independent check that the
allocators never use more colors than necessary.
"""

from __future__ import annotations

from .interference import InterferenceGraph
from ..ir.types import VirtualRegister


def maximum_cardinality_search(graph: InterferenceGraph) -> list[VirtualRegister]:
    """MCS order: repeatedly pick the vertex with the most visited
    neighbors.  On chordal graphs the reverse is a perfect elimination
    order."""
    weights = {node: 0 for node in graph.nodes()}
    order: list[VirtualRegister] = []
    visited: set[VirtualRegister] = set()
    while len(order) < len(weights):
        node = max(
            (n for n in weights if n not in visited),
            key=lambda n: (weights[n], -n.vid),
        )
        order.append(node)
        visited.add(node)
        for neighbor in graph.neighbors(node):
            if neighbor not in visited:
                weights[neighbor] += 1
    return order


def is_chordal(graph: InterferenceGraph) -> bool:
    """Chordality via the MCS perfect-elimination-order test.

    For each vertex (in reverse MCS order) its earlier neighbors must
    form a clique with respect to the single latest earlier neighbor.
    """
    order = maximum_cardinality_search(graph)
    position = {node: i for i, node in enumerate(order)}
    for node in order:
        earlier = [n for n in graph.neighbors(node) if position[n] < position[node]]
        if not earlier:
            continue
        pivot = max(earlier, key=lambda n: position[n])
        rest = set(earlier) - {pivot}
        if not rest <= (graph.neighbors(pivot) | {pivot}):
            return False
    return True


def chordal_coloring(graph: InterferenceGraph) -> dict[VirtualRegister, int]:
    """Greedy coloring along the MCS order (optimal on chordal graphs)."""
    order = maximum_cardinality_search(graph)
    colors: dict[VirtualRegister, int] = {}
    for node in order:
        taken = {colors[n] for n in graph.neighbors(node) if n in colors}
        color = 0
        while color in taken:
            color += 1
        colors[node] = color
    return colors


def chromatic_number(graph: InterferenceGraph) -> int:
    """Colors used by the optimal chordal coloring (0 for empty graphs)."""
    coloring = chordal_coloring(graph)
    if not coloring:
        return 0
    return max(coloring.values()) + 1

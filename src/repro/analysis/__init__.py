"""Program analyses: slot indexing, liveness, live intervals, interference
(RIG), conflict graph (RCG), conflict cost estimation (Eq. 1/2), register
and bank pressure tracking, and the Same Displacement Graph (SDG).
"""

from .chordal import (
    chordal_coloring,
    chromatic_number,
    is_chordal,
    maximum_cardinality_search,
)
from .conflict_graph import ConflictGraph
from .cost import ConflictCostModel, block_frequencies
from .interference import InterferenceGraph
from .intervals import LiveInterval, LiveIntervals, Segment
from .liveness import Liveness
from .pressure import BankPressureTracker
from .sdg import SameDisplacementGraph
from .slots import SlotIndexes

__all__ = [
    "BankPressureTracker",
    "ConflictCostModel",
    "ConflictGraph",
    "InterferenceGraph",
    "LiveInterval",
    "LiveIntervals",
    "Liveness",
    "SameDisplacementGraph",
    "Segment",
    "SlotIndexes",
    "block_frequencies",
    "chordal_coloring",
    "chromatic_number",
    "is_chordal",
    "maximum_cardinality_search",
]

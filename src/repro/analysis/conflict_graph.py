"""Register Conflict Graph (RCG) — the structure PresCount colors.

``G_RCG = (V, E)``: vertices are the virtual registers appearing as
bankable read operands of *conflict-relevant* instructions; an edge joins
two registers that are read together by at least one instruction (§II-B).
Assigning banks is coloring this graph with ``num_banks`` colors: a
monochromatic edge is a static bank conflict.

Edges carry the summed ``Cost_I`` of the instructions that induce them, so
the residual (uncolorable) conflict cost can be evaluated exactly, and
nodes carry ``Cost_R`` (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.types import RegClass, VirtualRegister
from .cost import ConflictCostModel


@dataclass
class ConflictGraph:
    """The RCG of one function (virtual registers only).

    Attributes:
        adjacency: vreg -> set of conflicting vregs.
        edge_cost: frozenset({a, b}) -> summed Cost_I of the inducing
            instructions.
        node_cost: vreg -> Cost_R (Eq. 2).
        edge_instrs: frozenset({a, b}) -> list of inducing instructions,
            used by the static statistics pass and by tests.
    """

    regclass: RegClass | None
    adjacency: dict[VirtualRegister, set[VirtualRegister]] = field(default_factory=dict)
    edge_cost: dict[frozenset, float] = field(default_factory=dict)
    node_cost: dict[VirtualRegister, float] = field(default_factory=dict)
    edge_instrs: dict[frozenset, list[Instruction]] = field(default_factory=dict)
    #: *Soft* edges (e.g. VLIW bundle edges): they never constrain the
    #: color choice, they only bias tie-breaking — a monochromatic soft
    #: edge costs issue bandwidth, not a register-file stall.
    soft_adjacency: dict[VirtualRegister, set[VirtualRegister]] = field(default_factory=dict)
    soft_edge_cost: dict[frozenset, float] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        function: Function,
        cost_model: ConflictCostModel | None = None,
        regclass: RegClass | None = None,
        flat=None,
    ) -> "ConflictGraph":
        if cost_model is None:
            cost_model = ConflictCostModel.build(
                function, regclass=regclass, flat=flat
            )
        graph = cls(regclass)
        if flat is not None:
            graph._build_flat(flat, cost_model)
            return graph
        for _, instr in function.instructions():
            if not instr.is_conflict_relevant(regclass):
                continue
            reads = [
                r for r in instr.bankable_reads(regclass)
                if isinstance(r, VirtualRegister)
            ]
            if len(reads) < 2:
                continue
            cost = cost_model.cost_of_instruction(instr)
            for reg in reads:
                graph.adjacency.setdefault(reg, set())
                graph.node_cost[reg] = cost_model.cost_of_register(reg)
            for a, b in combinations(reads, 2):
                key = frozenset((a, b))
                graph.adjacency[a].add(b)
                graph.adjacency[b].add(a)
                graph.edge_cost[key] = graph.edge_cost.get(key, 0.0) + cost
                graph.edge_instrs.setdefault(key, []).append(instr)
        return graph

    def _build_flat(self, flat, cost_model: ConflictCostModel) -> None:
        """Rid-space version of :meth:`build`'s instruction walk.

        Accumulates adjacency/edge costs over interned ids (one tuple
        hash per edge instead of a frozen-dataclass hash per operand) and
        raises to the object-keyed dicts once, preserving the object
        walk's insertion order and float accumulation order exactly.
        """
        from ..ir.instruction import OpKind

        ordinal_cost = getattr(cost_model, "_ordinal_cost", None)
        if getattr(cost_model, "_flat", None) is not flat:
            ordinal_cost = None
        kinds = flat.kinds
        instrs = flat.instrs
        reg_virtual = flat.reg_virtual
        arith = OpKind.ARITH
        adj: dict[int, set[int]] = {}
        edge_cost: dict[tuple[int, int], float] = {}
        edge_instrs: dict[tuple[int, int], list] = {}
        node_seen: set[int] = set()
        node_order: list[int] = []
        for i in range(len(instrs)):
            if kinds[i] is not arith:
                continue
            bank = flat.bank_reads(i, self.regclass)
            if len(bank) < 2:
                continue
            reads = [rid for rid in bank if reg_virtual[rid]]
            if len(reads) < 2:
                continue
            cost = (
                ordinal_cost[i]
                if ordinal_cost is not None
                else cost_model.cost_of_instruction(instrs[i])
            )
            for rid in reads:
                if rid not in node_seen:
                    node_seen.add(rid)
                    node_order.append(rid)
                    adj[rid] = set()
            for x in range(len(reads) - 1):
                a = reads[x]
                for y in range(x + 1, len(reads)):
                    b = reads[y]
                    key = (a, b) if a < b else (b, a)
                    adj[a].add(b)
                    adj[b].add(a)
                    edge_cost[key] = edge_cost.get(key, 0.0) + cost
                    edge_instrs.setdefault(key, []).append(instrs[i])
        regs = flat.regs
        self.adjacency = {
            regs[r]: {regs[n] for n in adj[r]} for r in node_order
        }
        self.node_cost = {
            regs[r]: cost_model.cost_of_register(regs[r]) for r in node_order
        }
        self.edge_cost = {
            frozenset((regs[a], regs[b])): c
            for (a, b), c in edge_cost.items()
        }
        self.edge_instrs = {
            frozenset((regs[a], regs[b])): lst
            for (a, b), lst in edge_instrs.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes(self) -> list[VirtualRegister]:
        return list(self.adjacency)

    def neighbors(self, reg: VirtualRegister) -> set[VirtualRegister]:
        return self.adjacency.get(reg, set())

    def degree(self, reg: VirtualRegister) -> int:
        return len(self.adjacency.get(reg, ()))

    def cost(self, reg: VirtualRegister) -> float:
        return self.node_cost.get(reg, 0.0)

    def edge_conflict_cost(self, a: VirtualRegister, b: VirtualRegister) -> float:
        return self.edge_cost.get(frozenset((a, b)), 0.0)

    def edge_count(self) -> int:
        return len(self.edge_cost)

    def components(self) -> list[set[VirtualRegister]]:
        """Connected components (the disjoint sub-graphs Algorithm 1
        processes in descending max-conflict-cost order)."""
        seen: set[VirtualRegister] = set()
        result = []
        for root in self.adjacency:
            if root in seen:
                continue
            comp = {root}
            stack = [root]
            seen.add(root)
            while stack:
                node = stack.pop()
                for nb in self.adjacency[node]:
                    if nb not in seen:
                        seen.add(nb)
                        comp.add(nb)
                        stack.append(nb)
            result.append(comp)
        return result

    def add_soft_edge(self, a: VirtualRegister, b: VirtualRegister, cost: float) -> None:
        """Record a tie-breaking-only edge (see ``soft_adjacency``)."""
        if a == b:
            return
        self.soft_adjacency.setdefault(a, set()).add(b)
        self.soft_adjacency.setdefault(b, set()).add(a)
        key = frozenset((a, b))
        self.soft_edge_cost[key] = self.soft_edge_cost.get(key, 0.0) + cost

    def soft_penalty(
        self,
        node: VirtualRegister,
        color: int,
        colors: dict[VirtualRegister, int],
    ) -> float:
        """Summed soft-edge cost of giving *node* the same color as its
        already-colored soft neighbors."""
        total = 0.0
        for neighbor in self.soft_adjacency.get(node, ()):
            if colors.get(neighbor) == color:
                total += self.soft_edge_cost[frozenset((node, neighbor))]
        return total

    def coloring_conflict_cost(self, colors: dict[VirtualRegister, int]) -> float:
        """Total residual cost of monochromatic edges under *colors*.

        Uncolored endpoints (missing from the mapping) are treated as
        non-conflicting, matching the semantics during incremental
        coloring.
        """
        total = 0.0
        for key, cost in self.edge_cost.items():
            a, b = tuple(key)
            if a in colors and b in colors and colors[a] == colors[b]:
                total += cost
        return total

    def is_proper_coloring(self, colors: dict[VirtualRegister, int]) -> bool:
        """True when every node is colored and no edge is monochromatic."""
        for node in self.adjacency:
            if node not in colors:
                return False
        for key in self.edge_cost:
            a, b = tuple(key)
            if colors[a] == colors[b]:
                return False
        return True

    def __len__(self) -> int:
        return len(self.adjacency)

    def __contains__(self, reg: VirtualRegister) -> bool:
        return reg in self.adjacency

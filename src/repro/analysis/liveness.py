"""Block-level liveness: live-in / live-out sets via backward dataflow.

Standard iterative analysis over the CFG:

    live_out(B) = union of live_in(S) for S in succ(B)
    live_in(B)  = gen(B) | (live_out(B) - kill(B))

where gen(B) is the set of registers with an upward-exposed use in B and
kill(B) the set of registers defined in B before any use.  Virtual and
physical registers are both tracked (pre-allocation IR normally contains
only vregs; post-allocation verification reuses the same analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cfg import CFG
from ..ir.function import Function
from ..ir.types import Register


@dataclass
class Liveness:
    """Live-in/out sets for every block of one function."""

    function: Function
    cfg: CFG
    live_in: dict[str, frozenset[Register]] = field(default_factory=dict)
    live_out: dict[str, frozenset[Register]] = field(default_factory=dict)
    gen: dict[str, frozenset[Register]] = field(default_factory=dict)
    kill: dict[str, frozenset[Register]] = field(default_factory=dict)

    @classmethod
    def build(
        cls, function: Function, cfg: CFG | None = None, flat=None
    ) -> "Liveness":
        """Build liveness; with *flat* the dataflow solve runs over rid
        bitmasks (same fixpoint, raised to the frozenset API at the end)."""
        if cfg is None:
            cfg = CFG.build(function)
        analysis = cls(function, cfg)
        if flat is not None:
            analysis._compute_flat(flat)
        else:
            analysis._compute_gen_kill()
            analysis._solve()
        return analysis

    def _compute_flat(self, flat) -> None:
        from ..ir.flat import iter_bits

        gen_m, kill_m, in_m, out_m = flat.liveness_masks()
        regs = flat.regs
        for b, label in enumerate(flat.block_labels):
            self.gen[label] = frozenset(regs[r] for r in iter_bits(gen_m[b]))
            self.kill[label] = frozenset(regs[r] for r in iter_bits(kill_m[b]))
            self.live_in[label] = frozenset(regs[r] for r in iter_bits(in_m[b]))
            self.live_out[label] = frozenset(
                regs[r] for r in iter_bits(out_m[b])
            )
        # Stash the masks for the interval build's raising shim.
        self._flat = flat
        self._live_in_masks = in_m
        self._live_out_masks = out_m

    def _compute_gen_kill(self) -> None:
        for block in self.function.blocks:
            gen: set[Register] = set()
            kill: set[Register] = set()
            for instr in block:
                for use in instr.reg_uses():
                    if use not in kill:
                        gen.add(use)
                for defreg in instr.reg_defs():
                    kill.add(defreg)
            self.gen[block.label] = frozenset(gen)
            self.kill[block.label] = frozenset(kill)

    def _solve(self) -> None:
        labels = [b.label for b in self.function.blocks]
        live_in = {label: frozenset() for label in labels}
        live_out = {label: frozenset() for label in labels}
        # Iterate in reverse layout order (a good approximation of reverse
        # dataflow order for our structured CFGs) until a fixed point.
        changed = True
        while changed:
            changed = False
            for label in reversed(labels):
                out: set[Register] = set()
                for succ in self.cfg.succs[label]:
                    out |= live_in[succ]
                new_out = frozenset(out)
                new_in = frozenset(self.gen[label] | (new_out - self.kill[label]))
                if new_out != live_out[label] or new_in != live_in[label]:
                    live_out[label] = new_out
                    live_in[label] = new_in
                    changed = True
        self.live_in = live_in
        self.live_out = live_out

    # ------------------------------------------------------------------
    def live_across(self, register: Register) -> list[str]:
        """Labels of blocks where *register* is live on entry."""
        return [label for label, regs in self.live_in.items() if register in regs]

"""Bank conflict cost estimation — Equations 1 and 2 of the paper.

``Cost_I`` of an instruction is the product of the trip counts of all its
enclosing loops (Eq. 1): a conflict in a hot inner loop costs its full
dynamic repetition, a conflict in straight-line code costs 1.

``Cost_R`` of a register sums ``Cost_I`` over the instructions that access
it (Eq. 2).  PresCount orders the RCG coloring work list by this value so
the hottest conflicts are resolved while colors are still plentiful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cfg import CFG
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.loops import LoopInfo
from ..ir.types import RegClass, Register, VirtualRegister


@dataclass
class ConflictCostModel:
    """Per-function conflict cost oracle.

    Attributes:
        function: The costed function.
        loop_info: Loop forest supplying trip counts.
        conflict_relevant_only: When True (default, the paper's model),
            ``Cost_R`` sums only over *conflict-relevant* instructions —
            the ones that can actually trigger a bank conflict.  When
            False, every access contributes (useful for the spill-weight
            reuse of the same machinery).
    """

    function: Function
    loop_info: LoopInfo
    regclass: RegClass | None = None
    conflict_relevant_only: bool = True
    _instr_cost: dict[int, float] = field(default_factory=dict)
    _reg_cost: dict[Register, float] = field(default_factory=dict)
    _access_cost: dict[Register, float] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        function: Function,
        loop_info: LoopInfo | None = None,
        regclass: RegClass | None = None,
        conflict_relevant_only: bool = True,
    ) -> "ConflictCostModel":
        if loop_info is None:
            loop_info = LoopInfo.build(function)
        model = cls(function, loop_info, regclass, conflict_relevant_only)
        model._compute()
        return model

    def _compute(self) -> None:
        for block in self.function.blocks:
            freq = self.loop_info.block_frequency(block.label)
            for instr in block:
                self._instr_cost[id(instr)] = freq
                for reg in instr.regs():
                    self._access_cost[reg] = self._access_cost.get(reg, 0.0) + freq
                relevant = instr.is_conflict_relevant(self.regclass)
                if self.conflict_relevant_only and not relevant:
                    continue
                regs = (
                    instr.bankable_reads(self.regclass)
                    if self.conflict_relevant_only
                    else tuple(instr.regs())
                )
                for reg in regs:
                    self._reg_cost[reg] = self._reg_cost.get(reg, 0.0) + freq

    # ------------------------------------------------------------------
    def cost_of_instruction(self, instr: Instruction) -> float:
        """Eq. 1: the trip-count product of the instruction's loop nest."""
        return self._instr_cost[id(instr)]

    def cost_of_register(self, reg: Register) -> float:
        """Eq. 2: summed instruction costs over accesses of *reg*."""
        return self._reg_cost.get(reg, 0.0)

    def access_cost(self, reg: Register) -> float:
        """Frequency-weighted count of *all* accesses (uses and defs)."""
        return self._access_cost.get(reg, 0.0)

    def spill_weight(self, reg: VirtualRegister, interval_size: int) -> float:
        """LLVM-style spill weight: frequency-weighted access count divided
        by interval size, so long cold intervals spill first."""
        return self._access_cost.get(reg, 0.0) / max(1, interval_size)

    def total_cost(self) -> float:
        """Summed Eq. 2 costs over every costed register — the function's
        total *potential* conflict cost (the quantity the per-phase
        ``phase.cost_delta.*`` metrics difference)."""
        return sum(self._reg_cost.values())


def total_potential_cost(
    function: Function,
    loop_info: LoopInfo | None = None,
    regclass: RegClass | None = None,
) -> float:
    """:meth:`ConflictCostModel.total_cost` without building the model.

    The total is a straight fold — each conflict-relevant instruction
    contributes ``freq * len(bankable_reads)`` — so callers that only
    need the scalar (the per-phase ``phase.cost_delta.*`` metrics) skip
    the model's three per-register dicts entirely.
    """
    if loop_info is None:
        loop_info = LoopInfo.build(function)
    total = 0.0
    for block in function.blocks:
        freq = loop_info.block_frequency(block.label)
        for instr in block:
            if instr.is_conflict_relevant(regclass):
                total += freq * len(instr.bankable_reads(regclass))
    return total


def block_frequencies(function: Function, cfg: CFG | None = None) -> dict[str, float]:
    """Convenience map: block label -> static execution frequency."""
    loop_info = LoopInfo.build(function, cfg)
    return {b.label: loop_info.block_frequency(b.label) for b in function.blocks}

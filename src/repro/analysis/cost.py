"""Bank conflict cost estimation — Equations 1 and 2 of the paper.

``Cost_I`` of an instruction is the product of the trip counts of all its
enclosing loops (Eq. 1): a conflict in a hot inner loop costs its full
dynamic repetition, a conflict in straight-line code costs 1.

``Cost_R`` of a register sums ``Cost_I`` over the instructions that access
it (Eq. 2).  PresCount orders the RCG coloring work list by this value so
the hottest conflicts are resolved while colors are still plentiful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cfg import CFG
from ..ir.function import Function
from ..ir.instruction import Instruction, OpKind
from ..ir.loops import LoopInfo
from ..ir.types import RegClass, Register, VirtualRegister


@dataclass
class ConflictCostModel:
    """Per-function conflict cost oracle.

    Attributes:
        function: The costed function.
        loop_info: Loop forest supplying trip counts.
        conflict_relevant_only: When True (default, the paper's model),
            ``Cost_R`` sums only over *conflict-relevant* instructions —
            the ones that can actually trigger a bank conflict.  When
            False, every access contributes (useful for the spill-weight
            reuse of the same machinery).
    """

    function: Function
    loop_info: LoopInfo
    regclass: RegClass | None = None
    conflict_relevant_only: bool = True
    _instr_cost: dict[int, float] = field(default_factory=dict)
    _reg_cost: dict[Register, float] = field(default_factory=dict)
    _access_cost: dict[Register, float] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        function: Function,
        loop_info: LoopInfo | None = None,
        regclass: RegClass | None = None,
        conflict_relevant_only: bool = True,
        flat=None,
    ) -> "ConflictCostModel":
        if loop_info is None:
            loop_info = LoopInfo.build(function)
        model = cls(function, loop_info, regclass, conflict_relevant_only)
        if flat is not None:
            model._compute_flat(flat)
        else:
            model._compute()
        return model

    def _compute_flat(self, flat) -> None:
        """Rid-array version of :meth:`_compute`.

        Per-register float accumulation follows the identical instruction
        walk order, so sums are bit-identical; the raised dicts are keyed
        in the same first-touch order as the object walk.
        """
        from ..ir.instruction import OpKind

        nregs = flat.num_regs
        access = [0.0] * nregs
        access_order: list[int] = []
        access_seen = [False] * nregs
        reg_cost = [0.0] * nregs
        cost_order: list[int] = []
        cost_seen = [False] * nregs
        ordinal_cost = [0.0] * len(flat.instrs)
        use_start, use_ids = flat.use_start, flat.use_ids
        def_start, def_ids = flat.def_start, flat.def_ids
        kinds = flat.kinds
        instrs = flat.instrs
        instr_cost = self._instr_cost
        arith = OpKind.ARITH
        block_frequency = self.loop_info.block_frequency
        for b, (bstart, bend) in enumerate(flat.block_bounds):
            freq = block_frequency(flat.block_labels[b])
            for i in range(bstart, bend):
                instr_cost[id(instrs[i])] = freq
                ordinal_cost[i] = freq
                u0, u1 = use_start[i], use_start[i + 1]
                d0, d1 = def_start[i], def_start[i + 1]
                for j in range(u0, u1):
                    rid = use_ids[j]
                    if not access_seen[rid]:
                        access_seen[rid] = True
                        access_order.append(rid)
                    access[rid] += freq
                for j in range(d0, d1):
                    rid = def_ids[j]
                    if not access_seen[rid]:
                        access_seen[rid] = True
                        access_order.append(rid)
                    access[rid] += freq
                bank = flat.bank_reads(i, self.regclass)
                relevant = kinds[i] is arith and len(bank) >= 2
                if self.conflict_relevant_only:
                    if not relevant:
                        continue
                    targets = bank
                else:
                    targets = [use_ids[j] for j in range(u0, u1)]
                    targets += [def_ids[j] for j in range(d0, d1)]
                for rid in targets:
                    if not cost_seen[rid]:
                        cost_seen[rid] = True
                        cost_order.append(rid)
                    reg_cost[rid] += freq
        regs = flat.regs
        self._access_cost = {regs[r]: access[r] for r in access_order}
        self._reg_cost = {regs[r]: reg_cost[r] for r in cost_order}
        # Let the conflict-graph build (sharing this flat) index Eq. 1
        # costs by ordinal instead of hashing instruction ids.
        self._flat = flat
        self._ordinal_cost = ordinal_cost

    def _compute(self) -> None:
        for block in self.function.blocks:
            freq = self.loop_info.block_frequency(block.label)
            for instr in block:
                self._instr_cost[id(instr)] = freq
                for reg in instr.regs():
                    self._access_cost[reg] = self._access_cost.get(reg, 0.0) + freq
                relevant = instr.is_conflict_relevant(self.regclass)
                if self.conflict_relevant_only and not relevant:
                    continue
                regs = (
                    instr.bankable_reads(self.regclass)
                    if self.conflict_relevant_only
                    else tuple(instr.regs())
                )
                for reg in regs:
                    self._reg_cost[reg] = self._reg_cost.get(reg, 0.0) + freq

    # ------------------------------------------------------------------
    def cost_of_instruction(self, instr: Instruction) -> float:
        """Eq. 1: the trip-count product of the instruction's loop nest."""
        return self._instr_cost[id(instr)]

    def cost_of_register(self, reg: Register) -> float:
        """Eq. 2: summed instruction costs over accesses of *reg*."""
        return self._reg_cost.get(reg, 0.0)

    def access_cost(self, reg: Register) -> float:
        """Frequency-weighted count of *all* accesses (uses and defs)."""
        return self._access_cost.get(reg, 0.0)

    def spill_weight(self, reg: VirtualRegister, interval_size: int) -> float:
        """LLVM-style spill weight: frequency-weighted access count divided
        by interval size, so long cold intervals spill first."""
        return self._access_cost.get(reg, 0.0) / max(1, interval_size)

    def total_cost(self) -> float:
        """Summed Eq. 2 costs over every costed register — the function's
        total *potential* conflict cost (the quantity the per-phase
        ``phase.cost_delta.*`` metrics difference)."""
        return sum(self._reg_cost.values())


def loop_shape_signature(function: Function) -> tuple:
    """Cheap fingerprint of everything block frequencies depend on.

    :meth:`LoopInfo.block_frequency` is a trip-count product over the
    loop nest, which is fully determined by (a) the CFG edge shape —
    each block's label and successor labels — and (b) the ``trip_count``
    metadata on header blocks.  Hashing just those lets hot callers (the
    pass manager's per-phase costing) reuse one frequency map across
    passes that rewrite instructions without restructuring control flow,
    skipping the CFG + dominator + loop rebuild entirely.
    """
    blocks = function.blocks
    last = len(blocks) - 1
    # Layout-order successor lookup inlined: Function.next_label scans
    # blocks with list.index (dataclass __eq__), which would dominate the
    # very fold this signature exists to keep cheap.
    return tuple(
        (
            block.label,
            block.successor_labels(blocks[i + 1].label if i < last else None),
            block.attrs.get("trip_count"),
        )
        for i, block in enumerate(blocks)
    )


def total_potential_cost(
    function: Function,
    loop_info: LoopInfo | None = None,
    regclass: RegClass | None = None,
    frequencies: dict[str, float] | None = None,
) -> float:
    """:meth:`ConflictCostModel.total_cost` without building the model.

    The total is a straight fold — each conflict-relevant instruction
    contributes ``freq * len(bankable_reads)`` — so callers that only
    need the scalar (the per-phase ``phase.cost_delta.*`` metrics) skip
    the model's three per-register dicts entirely.  Callers that cost
    the same function repeatedly can pass a precomputed *frequencies*
    map (see :func:`block_frequencies` / :func:`loop_shape_signature`)
    to also skip the loop analysis; blocks missing from the map count at
    frequency 1.0, matching :meth:`LoopInfo.block_frequency` for code
    outside any loop.
    """
    if frequencies is None:
        if loop_info is None:
            loop_info = LoopInfo.build(function)
        frequencies = {
            b.label: loop_info.block_frequency(b.label) for b in function.blocks
        }
    total = 0.0
    arith = OpKind.ARITH
    for block in function.blocks:
        freq = frequencies.get(block.label, 1.0)
        for instr in block:
            # Inlined is_conflict_relevant so the (expensive) operand
            # scan runs once per instruction instead of twice.
            if instr.kind is arith:
                reads = len(instr.bankable_reads(regclass))
                if reads >= 2:
                    total += freq * reads
    return total


def block_frequencies(function: Function, cfg: CFG | None = None) -> dict[str, float]:
    """Convenience map: block label -> static execution frequency."""
    loop_info = LoopInfo.build(function, cfg)
    return {b.label: loop_info.block_frequency(b.label) for b in function.blocks}

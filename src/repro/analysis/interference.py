"""Register Interference Graph (RIG).

Vertices are virtual registers of one class; an edge connects two vregs
whose live intervals overlap (they cannot share a physical register).
Built with a segment sweep, O(S log S + E), so large generated functions
stay cheap.

The RCG of the paper (:mod:`repro.analysis.conflict_graph`) is a subgraph
of this RIG in the sense of §II-B: bank-conflicting operands are live
simultaneously at their instruction, hence also interfere.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.types import RegClass, VirtualRegister
from .intervals import LiveInterval, LiveIntervals


@dataclass
class InterferenceGraph:
    """Undirected interference graph over virtual registers."""

    regclass: RegClass | None
    adjacency: dict[VirtualRegister, set[VirtualRegister]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        function: Function,
        intervals: LiveIntervals | None = None,
        regclass: RegClass | None = None,
    ) -> "InterferenceGraph":
        if intervals is None:
            intervals = LiveIntervals.build(function)
        graph = cls(regclass)
        live = intervals.vreg_intervals(regclass)
        for interval in live:
            graph.adjacency.setdefault(interval.reg, set())
        graph._sweep(live)
        return graph

    def _sweep(self, live: list[LiveInterval]) -> None:
        """Segment sweep: any two segments overlapping in slot space make
        their registers interfere."""
        events: list[tuple[int, int, VirtualRegister]] = []
        for interval in live:
            for seg in interval.segments:
                events.append((seg.start, seg.end, interval.reg))
        events.sort(key=lambda e: (e[0], e[1]))
        # Min-heap of (end, vid, reg) for active segments; the vid breaks
        # ties so registers themselves are never compared.
        active: list[tuple[int, int, VirtualRegister]] = []
        for start, end, reg in events:
            while active and active[0][0] <= start:
                heapq.heappop(active)
            for __, __, other in active:
                if other != reg:
                    self.add_edge(reg, other)
            heapq.heappush(active, (end, reg.vid, reg))

    # ------------------------------------------------------------------
    def add_edge(self, a: VirtualRegister, b: VirtualRegister) -> None:
        if a == b:
            raise ValueError(f"self-interference for {a!r}")
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)

    def interferes(self, a: VirtualRegister, b: VirtualRegister) -> bool:
        return b in self.adjacency.get(a, ())

    def neighbors(self, reg: VirtualRegister) -> set[VirtualRegister]:
        return self.adjacency.get(reg, set())

    def degree(self, reg: VirtualRegister) -> int:
        return len(self.adjacency.get(reg, ()))

    def nodes(self) -> list[VirtualRegister]:
        return list(self.adjacency)

    def edge_count(self) -> int:
        return sum(len(n) for n in self.adjacency.values()) // 2

    def subgraph(self, keep: set[VirtualRegister]) -> "InterferenceGraph":
        """Induced subgraph on *keep*."""
        sub = InterferenceGraph(self.regclass)
        for reg in keep:
            if reg in self.adjacency:
                sub.adjacency[reg] = self.adjacency[reg] & keep
        return sub

    def max_clique_lower_bound(self) -> int:
        """A fast greedy lower bound on the clique number (for diagnostics)."""
        best = 0
        for reg in sorted(self.adjacency, key=self.degree, reverse=True)[:32]:
            clique = {reg}
            for cand in sorted(self.neighbors(reg), key=self.degree, reverse=True):
                if all(cand in self.adjacency[c] for c in clique):
                    clique.add(cand)
            best = max(best, len(clique))
        return best

    def __len__(self) -> int:
        return len(self.adjacency)

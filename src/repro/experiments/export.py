"""Export experiment results as CSV / JSON for downstream analysis.

Tables and figures render to monospace text for the terminal; plotting
or spreadsheet pipelines want machine-readable data.  This module
flattens :class:`~repro.experiments.tables.TableResult`,
:class:`~repro.experiments.figures.FigureResult`, and raw
:class:`~repro.experiments.harness.ProgramResult` lists into CSV rows or
JSON documents.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Iterable

from .figures import FigureResult
from .harness import ProgramResult
from .tables import TableResult


def table_to_csv(table: TableResult) -> str:
    """One CSV document: header row + data rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.headers)
    writer.writerows(table.rows)
    return buffer.getvalue()


def table_to_json(table: TableResult) -> str:
    """JSON document: {name, headers, rows (as header-keyed objects)}."""
    records = [dict(zip(table.headers, row)) for row in table.rows]
    return json.dumps(
        {"name": table.name, "headers": table.headers, "rows": records},
        indent=2,
        default=str,
    )


def figure_to_json(figure: FigureResult) -> str:
    """JSON document: {name, series} with nested dicts preserved."""
    return json.dumps(
        {"name": figure.name, "series": figure.series}, indent=2, default=str
    )


def results_to_csv(results: Iterable[ProgramResult]) -> str:
    """Flatten program results (one row per program) to CSV."""
    results = list(results)
    buffer = io.StringIO()
    if not results:
        return ""
    field_names = [f.name for f in dataclasses.fields(ProgramResult)]
    writer = csv.DictWriter(buffer, fieldnames=field_names)
    writer.writeheader()
    for result in results:
        writer.writerow(dataclasses.asdict(result))
    return buffer.getvalue()


def results_to_json(results: Iterable[ProgramResult]) -> str:
    """Program results as a JSON array of objects."""
    return json.dumps(
        [dataclasses.asdict(r) for r in results], indent=2, default=str
    )


def write_all(ctx, directory, *, tables=None, figures=None) -> list[str]:
    """Regenerate the requested tables/figures and write CSV+JSON files
    into *directory*.  Returns the written file names."""
    import pathlib

    from .figures import ALL_FIGURES
    from .tables import ALL_TABLES

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[str] = []
    for name in tables if tables is not None else ALL_TABLES:
        table = ALL_TABLES[name](ctx)
        stem = f"table_{name}"
        (directory / f"{stem}.csv").write_text(table_to_csv(table))
        (directory / f"{stem}.json").write_text(table_to_json(table))
        written += [f"{stem}.csv", f"{stem}.json"]
    for name in figures if figures is not None else ALL_FIGURES:
        figure = ALL_FIGURES[name](ctx)
        stem = f"figure_{name}"
        (directory / f"{stem}.json").write_text(figure_to_json(figure))
        written.append(f"{stem}.json")
    return written

"""Out-of-order sweep: how much bank-conflict penalty survives ILP.

The in-order :class:`~repro.sim.dsa.DsaMachine` charges every bank
conflict a full stall, so the paper's Table VI/VII deltas are an upper
bound on what conflict-aware allocation can buy.  This module sweeps the
:class:`~repro.sim.ooo.OooMachine` over issue width x read ports per
bank and reports *penalty survival*: the non-vs-method conflict-cycle
delta at each configuration, as a percentage of the in-order
conflict-cycle delta.  100% means the out-of-order machine hides none
of the penalty; the degenerate corner (width 1, one port, rename off)
is pinned at exactly 100% by the bit-identical parity proof.

:func:`ooo_record` folds a sweep into the BENCH history schema
(``OOO_<timestamp>.json``) so ``repro bench diff`` gates the survival
matrix like any other benchmark record.
"""

from __future__ import annotations

import json
import time

from ..sim.ooo import OooConfig, SWEEP_PORTS, SWEEP_WIDTHS
from .harness import ExperimentContext
from .history import METRICS, SCHEMA_VERSION, _config_fingerprint
from .report import percent, render_table

#: Methods compared at every sweep point, in reporting order.
SWEEP_METHODS: tuple[str, ...] = ("non", "bcr", "bpc")


def _cell(
    ctx: ExperimentContext,
    suite: str,
    platform: str,
    banks: int,
    method: str,
    machine_spec: dict | None,
    programs: tuple[str, ...] | None,
) -> list:
    results = ctx.results(
        suite, platform, banks, method,
        measure_dynamic=False, measure_cycles=True,
        machine_spec=machine_spec,
    )
    if programs:
        results = [r for r in results if r.program in programs]
    return results


def ooo_sweep(
    ctx: ExperimentContext,
    *,
    suite: str = "DSA-OP",
    platform: str = "dsa",
    banks: int = 0,
    methods: tuple[str, ...] = SWEEP_METHODS,
    widths: tuple[int, ...] = SWEEP_WIDTHS,
    ports: tuple[int, ...] = SWEEP_PORTS,
    rob_size: int = 32,
    iq_size: int = 16,
    rename: bool = True,
    programs: tuple[str, ...] | None = None,
) -> dict:
    """Run the width x ports sweep and compute penalty survival.

    Returns ``{"baseline": ..., "rows": [...]}`` where *baseline* holds
    the in-order (DsaMachine) cycle and conflict-cycle totals per method
    and each row is one ``(issue_width, read_ports)`` point with
    per-method totals, the non-vs-method deltas, and the survival
    percentage: the conflict-cycle delta relative to the in-order
    conflict-cycle delta.  Everything is deterministic for a fixed
    context fingerprint, at any job count.
    """
    baseline = {"cycles": {}, "conflict_cycles": {}}
    for method in methods:
        results = _cell(ctx, suite, platform, banks, method, None, programs)
        baseline["cycles"][method] = sum(r.cycles or 0.0 for r in results)
        baseline["conflict_cycles"][method] = sum(
            r.conflict_cycles or 0.0 for r in results
        )
    rows = []
    for width in widths:
        for port_count in ports:
            config = OooConfig(
                issue_width=width, read_ports=port_count,
                rob_size=rob_size, iq_size=iq_size, rename=rename,
            )
            spec = config.to_dict()
            cycles = {}
            conflict_cycles = {}
            per_program = {}
            for method in methods:
                results = _cell(
                    ctx, suite, platform, banks, method, spec, programs
                )
                cycles[method] = sum(r.cycles or 0.0 for r in results)
                conflict_cycles[method] = sum(
                    r.conflict_cycles or 0.0 for r in results
                )
                per_program[method] = results
            row = {
                "issue_width": width,
                "read_ports": port_count,
                "config": spec,
                "cycles": cycles,
                "conflict_cycles": conflict_cycles,
                "results": per_program,
                "delta": {},
                "survival_pct": {},
            }
            for method in methods:
                if method == "non":
                    continue
                row["delta"][method] = cycles["non"] - cycles[method]
                # Survival is a *conflict penalty* ratio: the degenerate
                # machine reproduces the in-order conflict cycles
                # bit-identically, so its corner is exactly 100%.
                delta = conflict_cycles["non"] - conflict_cycles[method]
                inorder_delta = (
                    baseline["conflict_cycles"]["non"]
                    - baseline["conflict_cycles"][method]
                )
                row["survival_pct"][method] = percent(delta, inorder_delta)
            rows.append(row)
    return {
        "suite": suite,
        "platform": platform,
        "banks": banks,
        "methods": tuple(methods),
        "baseline": baseline,
        "rows": rows,
    }


def survival_table(sweep: dict) -> str:
    """Render a sweep as the headline penalty-survival table."""
    methods = [m for m in sweep["methods"] if m != "non"]
    headers = ["width", "ports"] + [
        f"{m} {column}"
        for m in sweep["methods"]
        for column in ("cycles",)
    ] + [f"{m} survival%" for m in methods]
    rows = []
    for row in sweep["rows"]:
        cells = [row["issue_width"], row["read_ports"]]
        cells += [row["cycles"][m] for m in sweep["methods"]]
        cells += [row["survival_pct"][m] for m in methods]
        rows.append(cells)
    baseline = sweep["baseline"]["cycles"]
    note = (
        "in-order baseline (DsaMachine): "
        + ", ".join(f"{m}={baseline[m]:g}" for m in sweep["methods"])
        + "; survival% = (non - method) conflict-cycle delta vs the "
        "in-order conflict-cycle delta"
    )
    return render_table(
        f"OoO conflict-penalty survival — {sweep['suite']} on "
        f"{sweep['platform']}:{sweep['banks']}",
        headers,
        rows,
        note=note,
    )


def ooo_record(ctx: ExperimentContext, sweep: dict, label: str = "") -> dict:
    """Fold a sweep into one BENCH-schema history record.

    Program keys are ``OOO/<suite>/w<width>p<ports>/<method>/<program>``
    so ``repro bench diff`` gates per-program cycles at every sweep
    point; the ``ooo`` block carries the survival matrix for human
    readers.
    """
    programs: dict[str, dict] = {}
    for row in sweep["rows"]:
        point = f"w{row['issue_width']}p{row['read_ports']}"
        for method, results in row["results"].items():
            for result in results:
                key = f"OOO/{sweep['suite']}/{point}/{method}/{result.program}"
                programs[key] = {
                    "reles": result.conflict_relevant,
                    "static_conflicts": result.static_conflicts,
                    "dynamic_conflicts": result.dynamic_conflicts,
                    "spills": result.spills,
                    "copies": result.copies_inserted,
                    "cycles": result.cycles,
                }
    totals = {
        metric: sum(
            entry[metric] for entry in programs.values()
            if entry[metric] is not None
        )
        for metric in METRICS
    }
    survival = {
        f"w{row['issue_width']}p{row['read_ports']}": {
            method: round(value, 4)
            for method, value in row["survival_pct"].items()
        }
        for row in sweep["rows"]
    }
    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": _config_fingerprint(ctx),
        "wall_seconds": 0.0,
        "latency": None,
        "programs": programs,
        "totals": totals,
        "ooo": {
            "suite": sweep["suite"],
            "platform": sweep["platform"],
            "banks": sweep["banks"],
            "baseline_cycles": sweep["baseline"]["cycles"],
            "baseline_conflict_cycles": sweep["baseline"]["conflict_cycles"],
            "survival_pct": survival,
        },
    }


def parity_dump(
    ctx: ExperimentContext,
    *,
    suite: str = "DSA-OP",
    platform: str = "dsa",
    banks: int = 0,
    methods: tuple[str, ...] = SWEEP_METHODS,
    machine_spec: dict | None = None,
    programs: tuple[str, ...] | None = None,
) -> str:
    """Canonical JSON of per-program conflict/alignment cycles.

    The degenerate-parity CI check writes one dump per machine (the
    in-order default and the degenerate OoO config) and compares them
    with ``cmp``: matching *bytes* prove the conflict cycle counts are
    bit-identical, not merely close.
    """
    payload: dict = {}
    for method in methods:
        results = _cell(
            ctx, suite, platform, banks, method, machine_spec, programs
        )
        payload[method] = {
            r.program: {
                "conflict_cycles": r.conflict_cycles,
                "alignment_cycles": r.alignment_cycles,
            }
            for r in results
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"

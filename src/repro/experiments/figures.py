"""Regeneration of the paper's Figures 1, 10, and 11 (data series).

No plotting libraries are assumed offline; each figure function returns
the numeric series the paper plots, plus a text rendering.  The series
structure mirrors the figures:

* Fig. 1 — prevalence: share of conflict-relevant tests per suite, and
  the conflict vs conflict-free split under 2/4/8/16-way interleaving;
* Fig. 10 — Platform-RV#1 static conflicts, normalized to non, per
  benchmark and bank count, for bcr and bpc; plus per-benchmark maxima;
* Fig. 11 — the same on Platform-RV#2 with *dynamic* conflict instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .harness import ExperimentContext, ProgramResult
from .report import percent, render_table


@dataclass
class FigureResult:
    """Structured output of one regenerated figure."""

    name: str
    series: dict = field(default_factory=dict)
    text: str = ""

    def render(self) -> str:
        return self.text


# ----------------------------------------------------------------------
# Figure 1 — prevalence of bank conflicts
# ----------------------------------------------------------------------
def figure1(ctx: ExperimentContext, bank_settings: tuple[int, ...] = (2, 4, 8, 16)) -> FigureResult:
    """Conflict-relevant share per suite, and the conflict / conflict-free
    split among relevant tests under N-way interleaved register files
    (default allocation).  Tests are individual functions, like the
    paper's 314 SPECfp / 64 CNN test granularity."""
    figure = FigureResult("Figure 1: prevalence of bank conflicts")
    lines = []
    for suite_name in ("SPECfp", "CNN-KERNEL"):
        base = ctx.function_static(suite_name, "dsa", bank_settings[0])
        total = len(base)
        relevant = sum(1 for __, reles, __ in base if reles > 0)
        figure.series[f"{suite_name}/relevant_share"] = percent(relevant, total)
        lines.append(
            f"{suite_name}: {relevant}/{total} tests conflict-relevant "
            f"({percent(relevant, total):.2f}%)"
        )
        rows = []
        for banks in bank_settings:
            triples = ctx.function_static(suite_name, "dsa", banks)
            relevant_triples = [t for t in triples if t[1] > 0]
            conflicting = sum(1 for __, __, conflicts in relevant_triples if conflicts > 0)
            share = percent(conflicting, len(relevant_triples))
            figure.series[f"{suite_name}/{banks}-way/conflict_share"] = share
            rows.append([f"{banks}-way", len(relevant_triples), conflicting, round(share, 2)])
        lines.append(
            render_table(
                f"  {suite_name}: conflicting share among conflict-relevant tests",
                ["interleave", "relevant", "conflicting", "% conflicting"],
                rows,
            )
        )
    figure.text = "\n".join(lines)
    return figure


# ----------------------------------------------------------------------
# Figures 10 / 11 — per-benchmark conflicts under the three methods
# ----------------------------------------------------------------------
def _per_benchmark(
    results: list[ProgramResult], *, dynamic: bool
) -> dict[str, float]:
    attribute = "dynamic_conflicts" if dynamic else "static_conflicts"
    by_name: dict[str, float] = {}
    for result in results:
        value = getattr(result, attribute)
        by_name[result.program] = float(value if value is not None else 0)
    return by_name


def _conflict_figure(
    ctx: ExperimentContext,
    name: str,
    platform: str,
    bank_settings: tuple[int, ...],
    *,
    dynamic: bool,
) -> FigureResult:
    figure = FigureResult(name)
    spec_programs = [p.name for p in ctx.suite("SPECfp").programs]
    cnn_categories = sorted(
        {
            p.category
            for p in ctx.suite("CNN-KERNEL").programs
            if p.category != "irrelevant"
        }
    )
    rows = []
    for banks in bank_settings:
        per_method: dict[str, dict[str, float]] = {}
        cnn_by_cat: dict[str, dict[str, float]] = {}
        for method in ("non", "bcr", "bpc"):
            results = ctx.results("SPECfp", platform, banks, method)
            per_method[method] = _per_benchmark(results, dynamic=dynamic)
            cnn_results = ctx.results("CNN-KERNEL", platform, banks, method)
            totals: dict[str, float] = {}
            for result in cnn_results:
                if result.category == "irrelevant":
                    continue
                value = getattr(
                    result, "dynamic_conflicts" if dynamic else "static_conflicts"
                )
                totals[result.category] = totals.get(result.category, 0.0) + float(
                    value if value is not None else 0
                )
            cnn_by_cat[method] = totals
        for bench in spec_programs + cnn_categories:
            group = per_method if bench in per_method["non"] else cnn_by_cat
            base = group["non"].get(bench, 0.0)
            norm_bcr = group["bcr"].get(bench, 0.0) / base if base else 0.0
            norm_bpc = group["bpc"].get(bench, 0.0) / base if base else 0.0
            figure.series[f"{bench}/{banks}/non"] = base
            figure.series[f"{bench}/{banks}/bcr"] = norm_bcr
            figure.series[f"{bench}/{banks}/bpc"] = norm_bpc
            rows.append(
                [
                    bench,
                    banks,
                    round(base),
                    round(norm_bcr, 3),
                    round(norm_bpc, 3),
                ]
            )
    kind = "dynamic" if dynamic else "static"
    figure.text = render_table(
        f"{name} ({kind} conflicts; bcr/bpc normalized to non)",
        ["benchmark", "banks", "non", "bcr/non", "bpc/non"],
        rows,
    )
    # Panel (b): maximum conflict count per benchmark (non).
    maxima = {}
    for bench in spec_programs:
        maxima[bench] = max(
            figure.series[f"{bench}/{banks}/non"] for banks in bank_settings
        )
    figure.series["maxima"] = maxima
    return figure


def figure10(ctx: ExperimentContext) -> FigureResult:
    """RV#1 static conflicts: non / bcr / bpc across 2/4/8 banks."""
    return _conflict_figure(
        ctx,
        "Figure 10: Platform-RV#1 bank conflicts",
        "rv1",
        (2, 4, 8),
        dynamic=False,
    )


def figure11(ctx: ExperimentContext) -> FigureResult:
    """RV#2 dynamic conflicts: non / bcr / bpc across 2/4 banks."""
    return _conflict_figure(
        ctx,
        "Figure 11: Platform-RV#2 bank conflicts",
        "rv2",
        (2, 4),
        dynamic=True,
    )


#: All regenerable figures, keyed by their paper number.
ALL_FIGURES = {
    "1": figure1,
    "10": figure10,
    "11": figure11,
}

"""Experiment regeneration: the harness plus one function per paper table
(I-VII) and figure (1, 10, 11)."""

from .export import (
    figure_to_json,
    results_to_csv,
    results_to_json,
    table_to_csv,
    table_to_json,
    write_all,
)
from .figures import ALL_FIGURES, FigureResult, figure1, figure10, figure11
from .harness import (
    ExperimentContext,
    ProgramResult,
    resolve_jobs,
    run_program,
    run_suite,
)
from .history import (
    DEFAULT_HISTORY_DIR,
    SCHEMA_VERSION,
    Delta,
    DiffReport,
    RecordError,
    collect_record,
    diff_records,
    load_record,
    write_record,
)
from .paper import PAPER, ComparisonReport, ShapeCheck, compare
from .report import geomean, percent, render_table
from .tables import (
    ALL_TABLES,
    TableResult,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

__all__ = [
    "ALL_FIGURES",
    "ALL_TABLES",
    "DEFAULT_HISTORY_DIR",
    "Delta",
    "DiffReport",
    "ExperimentContext",
    "FigureResult",
    "ProgramResult",
    "PAPER",
    "ComparisonReport",
    "RecordError",
    "SCHEMA_VERSION",
    "ShapeCheck",
    "collect_record",
    "compare",
    "diff_records",
    "load_record",
    "write_record",
    "TableResult",
    "figure1",
    "figure_to_json",
    "results_to_csv",
    "results_to_json",
    "table_to_csv",
    "table_to_json",
    "write_all",
    "figure10",
    "figure11",
    "geomean",
    "percent",
    "render_table",
    "resolve_jobs",
    "run_program",
    "run_suite",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]

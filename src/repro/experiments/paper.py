"""The paper's published numbers, and programmatic shape comparison.

`PAPER` records the evaluation-section values verbatim (Tables I–VII,
Figures 1/10/11 headline quantities).  :func:`compare` regenerates each
experiment from an :class:`~repro.experiments.harness.ExperimentContext`
and checks the *shape* relations the reproduction targets (orderings,
signs, crossovers) — the same relations EXPERIMENTS.md narrates and the
benches assert.  ``python -m repro compare`` prints the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .figures import figure1
from .harness import ExperimentContext
from .report import render_table
from .tables import table2, table4, table6, table7

#: Published values (paper's Tables/Figures, §IV).
PAPER = {
    "fig1.specfp_relevant_share": 56.37,
    "fig1.cnn_relevant_share": 85.48,
    "table2.confs": {2: 33374, 4: 10023, 8: 4815},
    "table2.redu_bcr": {2: 27777, 4: 6616, 8: 3684},
    "table2.redu_bpc": {2: 30663, 4: 8426, 8: 4084},
    "table2.impv": {2: 2886, 4: 1810, 8: 400},
    "table4.static_confs": {2: 32432, 4: 9472},
    "table4.dynamic_confs": {2: 21457, 4: 3461},
    "table4.impv_static": {2: 3211, 4: 178},
    "table4.impv_dynamic": {2: 1697, 4: 521},
    "table6.avg_ratio_bpc": 0.07,
    "table6.avg_ratio_non": {2: 100.0, 4: 59.22, 8: 38.2, 16: 28.72},
    "table6.tr18987_bpc": 0.57,
    "table7.reduce_cycles": {"bpc": 89, "2-non": 93, "4-non": 91},
    "table7.idft_copies_bpc": 2936,
    "headline.dsa_reduction_pct": 99.85,
    "headline.spec_cnn_reduction_pct": {"specfp_cnn_2bank": 43.28},
}


@dataclass
class ShapeCheck:
    """One shape relation: the quantity, paper value, measured value, and
    whether the relation the reproduction targets holds."""

    experiment: str
    quantity: str
    paper: object
    measured: object
    holds: bool
    relation: str


@dataclass
class ComparisonReport:
    checks: list[ShapeCheck] = field(default_factory=list)

    def add(self, experiment, quantity, paper, measured, holds, relation):
        self.checks.append(
            ShapeCheck(experiment, quantity, paper, measured, bool(holds), relation)
        )

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def render(self) -> str:
        rows = [
            [c.experiment, c.quantity, c.paper, c.measured,
             "ok" if c.holds else "DIVERGES", c.relation]
            for c in self.checks
        ]
        status = "all shape relations hold" if self.all_hold else "DIVERGENCES present"
        return render_table(
            f"Paper vs measured — shape comparison ({status})",
            ["experiment", "quantity", "paper", "measured", "shape", "relation"],
            rows,
        )


def compare(ctx: ExperimentContext) -> ComparisonReport:
    """Regenerate the key experiments and check the paper's shapes."""
    report = ComparisonReport()

    # Figure 1: prevalence ordering (CNN > SPECfp, both substantial).
    fig = figure1(ctx, bank_settings=(2, 16))
    spec_share = fig.series["SPECfp/relevant_share"]
    cnn_share = fig.series["CNN-KERNEL/relevant_share"]
    report.add(
        "Fig.1", "relevant share SPECfp (%)",
        PAPER["fig1.specfp_relevant_share"], round(spec_share, 2),
        30 < spec_share < 85, "substantial (30-85%)",
    )
    report.add(
        "Fig.1", "relevant share CNN (%)",
        PAPER["fig1.cnn_relevant_share"], round(cnn_share, 2),
        cnn_share > spec_share, "CNN > SPECfp",
    )

    # Table II: conflicts fall with banks; bpc reduction >= bcr at 2 banks.
    t2 = {row[0]: row for row in table2(ctx).rows}
    confs = [t2[b][1] for b in (2, 4, 8)]
    report.add(
        "Table II", "CONFS by bank (2/4/8)",
        list(PAPER["table2.confs"].values()), confs,
        confs[0] > confs[1] > confs[2], "monotone decreasing",
    )
    report.add(
        "Table II", "IMPV (bpc over bcr) at 2 banks",
        PAPER["table2.impv"][2], t2[2][4],
        t2[2][4] >= 0, "IMPV >= 0",
    )

    # Table IV: dynamic < static; reductions erode at 4 banks.
    t4 = {row[0]: row for row in table4(ctx).rows}
    report.add(
        "Table IV", "dynamic vs static CONFS at 2 banks",
        (PAPER["table4.static_confs"][2], PAPER["table4.dynamic_confs"][2]),
        (t4["2-STATIC"][1], t4["2-DYNAMIC"][1]),
        t4["2-DYNAMIC"][1] < t4["2-STATIC"][1], "dynamic < static",
    )
    report.add(
        "Table IV", "bpc edge over bcr (IMPV), 2 vs 4 banks",
        (PAPER["table4.impv_static"][2], PAPER["table4.impv_static"][4]),
        (t4["2-STATIC"][4], t4["4-STATIC"][4]),
        t4["4-STATIC"][4] <= max(t4["2-STATIC"][4], 10),
        "shrinks with banks",
    )

    # Table VI: the headline.
    t6 = table6(ctx).row_map()
    average = t6["average"]
    report.add(
        "Table VI", "average bpc conflict ratio (%)",
        PAPER["table6.avg_ratio_bpc"], average[2],
        average[2] < 5.0, "~0 (99.85% reduction)",
    )
    report.add(
        "Table VI", "non ratio trend by banks (2/4/8/16)",
        list(PAPER["table6.avg_ratio_non"].values()),
        [average[3], average[4], average[5], average[6]],
        average[3] > average[4] > average[5] > average[6] > average[2],
        "monotone, floor above bpc",
    )
    report.add(
        "Table VI", "only nonzero bpc kernel",
        f"tr18987 ({PAPER['table6.tr18987_bpc']}%)",
        f"tr18987 ({t6['tr18987'][2]}%)" if t6["tr18987"][2] > 0 else "none",
        all(
            t6[name][2] == 0.0
            for name in ("reduce", "red-ur", "shruse", "sr-ur", "dw-conv2d",
                         "tr15651", "idft")
        ),
        "everything else at 0",
    )

    # Table VII: reductions gain cycles; copies concentrate on idft.
    t7 = table7(ctx).row_map()
    report.add(
        "Table VII", "reduce cycles bpc vs 2-non",
        (PAPER["table7.reduce_cycles"]["bpc"], PAPER["table7.reduce_cycles"]["2-non"]),
        (t7["reduce"][5], t7["reduce"][6]),
        t7["reduce"][5] < t7["reduce"][6], "bpc < 2-non",
    )
    top2 = sorted((row[3] for row in t7.values()), reverse=True)[:2]
    report.add(
        "Table VII", "copy concentration",
        f"idft leads ({PAPER['table7.idft_copies_bpc']})",
        f"idft copies = {t7['idft'][3]}",
        t7["idft"][3] in top2, "idft in copy top-2",
    )

    return report

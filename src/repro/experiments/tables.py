"""Regeneration of the paper's Tables I–VII.

Every function takes an :class:`~repro.experiments.harness.ExperimentContext`
and returns a :class:`TableResult` carrying structured rows plus a
``render()`` for human-readable output.  Absolute numbers come from the
synthetic substrate (see DESIGN.md §2); the reproduction targets are the
*shapes*: non > bcr > bpc conflicts, small spill increments, the DSA's
near-total conflict elimination under 2x4-bpc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .harness import ExperimentContext, ProgramResult
from .report import geomean, percent, render_table


@dataclass
class TableResult:
    """Structured output of one regenerated table."""

    name: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    note: str | None = None

    def render(self) -> str:
        return render_table(self.name, self.headers, self.rows, note=self.note)

    def row_map(self) -> dict:
        """First column -> row, for tests."""
        return {row[0]: row for row in self.rows}


def _total(results: list[ProgramResult], attribute: str) -> float:
    values = [getattr(r, attribute) for r in results]
    return sum(v for v in values if v is not None)


# ----------------------------------------------------------------------
# Table I — suite characteristics
# ----------------------------------------------------------------------
def table1(ctx: ExperimentContext) -> TableResult:
    """Benchmark characteristics: executables, modules, functions,
    conflict-relevant instructions, and default-RA spills on both
    platforms (Sp32 = 32-register RV#2, Sp1k = 1024-register RV#1)."""
    table = TableResult(
        "Table I: Characteristics of SPECfp and CNN-KERNEL",
        ["Benchmark", "Exes", "Mods", "Fns", "Reles", "Sp32", "Sp1k"],
        note="CNN rows are geometric means over conflict-relevant executables.",
    )
    spec = ctx.suite("SPECfp")
    rv2_non = {r.program: r for r in ctx.results("SPECfp", "rv2", 2, "non")}
    rv1_non = {r.program: r for r in ctx.results("SPECfp", "rv1", 2, "non")}
    for program in spec.programs:
        result32 = rv2_non[program.name]
        result1k = rv1_non[program.name]
        table.rows.append(
            [
                f"SPECfp.{program.name}",
                1,
                program.module.attrs["benchmark"].modules,
                result32.functions,
                result32.conflict_relevant,
                result32.spills,
                result1k.spills,
            ]
        )
    cnn32 = ctx.results("CNN-KERNEL", "rv2", 2, "non")
    cnn1k = {r.program: r for r in ctx.results("CNN-KERNEL", "rv1", 2, "non")}
    by_category: dict[str, list[ProgramResult]] = {}
    for result in cnn32:
        by_category.setdefault(result.category, []).append(result)
    for category, results in by_category.items():
        if category == "irrelevant":
            continue
        relevant = [r for r in results if r.is_conflict_relevant]
        if not relevant:
            continue
        table.rows.append(
            [
                f"CNN.{category}",
                len(results),
                1,
                round(geomean(r.functions for r in relevant), 1),
                round(geomean(r.conflict_relevant for r in relevant), 1),
                round(geomean(r.spills for r in relevant), 1),
                round(geomean(cnn1k[r.program].spills for r in relevant), 1),
            ]
        )
    return table


# ----------------------------------------------------------------------
# Tables II / IV — combined conflicts and reductions
# ----------------------------------------------------------------------
def _reduction_row(
    ctx: ExperimentContext, platform: str, banks: int, *, dynamic: bool
) -> tuple[int, int, int, int]:
    """(CONFS, Redu_bcr, Redu_bpc, IMPV) for one bank setting."""
    attribute = "dynamic_conflicts" if dynamic else "static_conflicts"
    confs = _total(ctx.combined_results(platform, banks, "non"), attribute)
    bcr = _total(ctx.combined_results(platform, banks, "bcr"), attribute)
    bpc = _total(ctx.combined_results(platform, banks, "bpc"), attribute)
    redu_bcr = round(confs - bcr)
    redu_bpc = round(confs - bpc)
    return round(confs), redu_bcr, redu_bpc, redu_bpc - redu_bcr


def table2(ctx: ExperimentContext) -> TableResult:
    """RV#1: combined static conflicts and per-method reductions."""
    table = TableResult(
        "Table II: Conflicts and reductions, Platform-RV#1 (static)",
        ["BANK", "CONFS", "Redu.bcr", "Redu.bpc", "IMPV"],
        note="IMPV = bpc reduction minus bcr reduction (positive favors bpc).",
    )
    for banks in (2, 4, 8):
        confs, bcr, bpc, impv = _reduction_row(ctx, "rv1", banks, dynamic=False)
        table.rows.append([banks, confs, bcr, bpc, impv])
    return table


def table4(ctx: ExperimentContext) -> TableResult:
    """RV#2: combined static and dynamic conflicts and reductions."""
    table = TableResult(
        "Table IV: Conflicts and reductions, Platform-RV#2",
        ["BANK-METHOD", "CONFS", "Redu.bcr", "Redu.bpc", "IMPV"],
    )
    for banks in (2, 4):
        confs, bcr, bpc, impv = _reduction_row(ctx, "rv2", banks, dynamic=False)
        table.rows.append([f"{banks}-STATIC", confs, bcr, bpc, impv])
        confs, bcr, bpc, impv = _reduction_row(ctx, "rv2", banks, dynamic=True)
        table.rows.append([f"{banks}-DYNAMIC", confs, bcr, bpc, impv])
    return table


# ----------------------------------------------------------------------
# Tables III / V — conflict reduction vs spill increment
# ----------------------------------------------------------------------
def _cr_si(
    ctx: ExperimentContext, suite: str, platform: str, banks: int, method: str
) -> tuple[int, int]:
    """(conflict reduction, spill increment) of *method* vs non."""
    non = ctx.results(suite, platform, banks, "non")
    with_method = ctx.results(suite, platform, banks, method)
    cr = round(_total(non, "static_conflicts") - _total(with_method, "static_conflicts"))
    si = round(_total(with_method, "spills") - _total(non, "spills"))
    return cr, si


def _spill_table(
    ctx: ExperimentContext, name: str, platform: str, bank_settings: tuple[int, ...]
) -> TableResult:
    headers = ["BK-IMPL"] + [
        f"{banks}-{method}" for banks in bank_settings for method in ("bcr", "bpc")
    ]
    table = TableResult(name, headers)
    for suite, label in (("SPECfp", "SPEC"), ("CNN-KERNEL", "CNN")):
        cr_row: list = [f"{label}.CR"]
        si_row: list = [f"{label}.SI"]
        for banks in bank_settings:
            for method in ("bcr", "bpc"):
                cr, si = _cr_si(ctx, suite, platform, banks, method)
                cr_row.append(cr)
                si_row.append(si)
        table.rows.append(cr_row)
        table.rows.append(si_row)
    return table


def table3(ctx: ExperimentContext) -> TableResult:
    """RV#1: conflict reduction vs spilling increment."""
    return _spill_table(
        ctx,
        "Table III: Conflict reduction vs spill increment, Platform-RV#1",
        "rv1",
        (2, 4, 8),
    )


def table5(ctx: ExperimentContext) -> TableResult:
    """RV#2: conflict reduction vs spilling increment."""
    return _spill_table(
        ctx,
        "Table V: Conflict reduction vs spill increment, Platform-RV#2",
        "rv2",
        (2, 4),
    )


# ----------------------------------------------------------------------
# Tables VI / VII — Platform-DSA
# ----------------------------------------------------------------------
def table6(ctx: ExperimentContext) -> TableResult:
    """DSA: conflict ratios of 2x4-bpc vs plain 2/4/8/16-banked non.

    BASE is the 2-banked non conflict count; every other column is its
    conflict count as a percentage of BASE.
    """
    table = TableResult(
        "Table VI: Bank conflicts, bpc vs non, Platform-DSA",
        ["DSA-OP", "BASE", "2x4-bpc", "2-non", "4-non", "8-non", "16-non"],
        note="Columns after BASE are conflict ratios in % of BASE.",
    )
    base = {r.program: r for r in ctx.results("DSA-OP", "dsa", 2, "non")}
    bpc = {r.program: r for r in ctx.results("DSA-OP", "dsa", 0, "bpc")}
    non = {
        banks: {r.program: r for r in ctx.results("DSA-OP", "dsa", banks, "non")}
        for banks in (2, 4, 8, 16)
    }
    ratios: dict[str, list[float]] = {key: [] for key in ("bpc", "2", "4", "8", "16")}
    bases: list[float] = []
    for program in ctx.suite("DSA-OP").programs:
        name = program.name
        base_conflicts = base[name].static_conflicts
        bases.append(base_conflicts)
        row: list = [name, base_conflicts]
        ratio = percent(bpc[name].static_conflicts, base_conflicts)
        ratios["bpc"].append(ratio)
        row.append(round(ratio, 2))
        for banks in (2, 4, 8, 16):
            ratio = percent(non[banks][name].static_conflicts, base_conflicts)
            ratios[str(banks)].append(ratio)
            row.append(round(ratio, 2))
        table.rows.append(row)
    table.rows.append(
        [
            "average",
            round(geomean(bases), 2),
            round(sum(ratios["bpc"]) / len(ratios["bpc"]), 2),
            round(sum(ratios["2"]) / len(ratios["2"]), 2),
            round(sum(ratios["4"]) / len(ratios["4"]), 2),
            round(sum(ratios["8"]) / len(ratios["8"]), 2),
            round(sum(ratios["16"]) / len(ratios["16"]), 2),
        ]
    )
    return table


def table7(ctx: ExperimentContext) -> TableResult:
    """DSA: spills, copies, and cycles of bpc vs 2/4-banked non."""
    table = TableResult(
        "Table VII: Spills, copies and cycles, Platform-DSA",
        [
            "DSA-OP",
            "Spills.bpc",
            "Spills.non",
            "Copies.bpc",
            "Copies.non",
            "Cycles.bpc",
            "Cycles.2-non",
            "Cycles.4-non",
        ],
    )
    bpc = {r.program: r for r in ctx.results("DSA-OP", "dsa", 0, "bpc")}
    non2 = {r.program: r for r in ctx.results("DSA-OP", "dsa", 2, "non")}
    non4 = {r.program: r for r in ctx.results("DSA-OP", "dsa", 4, "non")}
    for program in ctx.suite("DSA-OP").programs:
        name = program.name
        table.rows.append(
            [
                name,
                bpc[name].spills,
                non2[name].spills,
                bpc[name].copies_inserted,
                non2[name].copies_inserted,
                round(bpc[name].cycles or 0.0),
                round(non2[name].cycles or 0.0),
                round(non4[name].cycles or 0.0),
            ]
        )
    return table


#: All regenerable tables, keyed by their paper number.
ALL_TABLES = {
    "I": table1,
    "II": table2,
    "III": table3,
    "IV": table4,
    "V": table5,
    "VI": table6,
    "VII": table7,
}

"""Benchmark regression observatory: schema-versioned history records.

Every measured quantity in this reproduction is deterministic for a fixed
config fingerprint (scales, seed, IDFT size) — reruns produce bit-equal
numbers.  That makes longitudinal regression tracking trivial *if* the
numbers are written down: :func:`collect_record` runs the canonical
combination matrix (the same (suite, platform, banks, method) cells the
paper tables consume) and captures per-program conflicts, cycles, spills,
copies and Reles plus the config fingerprint and wall time; records land
as ``BENCH_<timestamp>.json`` under ``benchmarks/results/history/``.

:func:`diff_records` compares two records metric-by-metric, flagging
deltas beyond a configurable relative threshold (with an absolute floor
to ignore 1-conflict jitter on tiny programs).  The CLI front-end,
``repro bench diff old new``, exits non-zero on regression so CI can gate
on it: exit 0 = clean, 1 = regression, 2 = schema or config mismatch
(records that are not comparable).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from .harness import ExperimentContext

#: Bump when the record layout changes incompatibly.  ``load_record``
#: refuses mismatched schemas rather than mis-diffing them.
SCHEMA_VERSION = 1

#: Default location for history records, relative to the repo root.
DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "results", "history")

#: The canonical combination matrix — the cells the paper tables read.
#: RV#2 carries the dynamic-conflict estimate, the DSA carries cycles
#: (``dsa:0`` is the 2x4 bank-subgroup file the bpc method targets).
CANONICAL_COMBOS: tuple[tuple[str, str, int, str], ...] = (
    ("SPECfp", "rv2", 2, "non"),
    ("SPECfp", "rv2", 2, "bcr"),
    ("SPECfp", "rv2", 2, "bpc"),
    ("CNN-KERNEL", "rv2", 2, "non"),
    ("CNN-KERNEL", "rv2", 2, "bcr"),
    ("CNN-KERNEL", "rv2", 2, "bpc"),
    ("DSA-OP", "dsa", 2, "non"),
    ("DSA-OP", "dsa", 0, "bpc"),
)

#: Per-program metrics recorded and diffed.  All are higher-is-worse
#: except ``reles``, which is structural: a reles change means the
#: workload itself changed, reported separately from regressions.
METRICS: tuple[str, ...] = (
    "reles",
    "static_conflicts",
    "dynamic_conflicts",
    "spills",
    "copies",
    "cycles",
)
REGRESSION_METRICS: tuple[str, ...] = tuple(m for m in METRICS if m != "reles")


class RecordError(ValueError):
    """A history record is unreadable or not comparable."""


def _latency_kernel(name: str = "latency_probe", trip_count: int = 64):
    """Deterministic ~250-instruction loop kernel for latency probes."""
    from ..ir import IRBuilder

    builder = IRBuilder(name)
    xs = [builder.const(float(i + 1)) for i in range(8)]
    acc = builder.const(0.0)
    with builder.loop(trip_count=trip_count):
        vals = list(xs)
        for i in range(120):
            value = builder.arith(
                "fmul", vals[i % len(vals)], vals[(i + 3) % len(vals)]
            )
            vals.append(value)
            if len(vals) > 24:
                vals.pop(0)
            builder.arith_into(acc, "fadd", acc, value)
    builder.ret(acc)
    return builder.finish()


def _timed_under(mode: str, fn, rounds: int) -> float:
    """Best-of-*rounds* wall time of ``fn()`` with ``REPRO_FAST`` forced."""
    previous = os.environ.get("REPRO_FAST")
    os.environ["REPRO_FAST"] = mode
    try:
        best = None
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best
    finally:
        if previous is None:
            os.environ.pop("REPRO_FAST", None)
        else:
            os.environ["REPRO_FAST"] = previous


def measure_wall_latency(rounds: int = 3) -> dict:
    """Single-request wall latency in ms: ``bare`` (object path), ``flat``
    (resolved ``REPRO_FAST`` backend), and ``incremental`` (warm module
    rebuild with one of four functions changed).

    Informational only — timing is machine-dependent, so
    :func:`diff_records` reports latency movement but never gates on it.
    """
    from ..ir import print_function, print_module
    from ..ir.flat import fast_mode
    from ..ir.function import Module
    from ..service.artifact import build_artifact
    from ..service.incremental import IncrementalAllocator

    spec = {"registers": 32, "banks": 4}
    ir = print_function(_latency_kernel())
    bare = _timed_under("off", lambda: build_artifact(ir, spec, "bpc"), rounds)
    mode = fast_mode()
    flat_mode = mode if mode != "off" else "python"
    flat = _timed_under(
        flat_mode, lambda: build_artifact(ir, spec, "bpc"), rounds
    )

    def _module(changed: bool) -> str:
        module = Module("latency_probe_mod")
        for i in range(4):
            # A different trip count changes only probe0.
            trips = 32 if (i == 0 and changed) else 64
            module.add(_latency_kernel(f"probe{i}", trip_count=trips))
        return print_module(module)

    allocator = IncrementalAllocator()
    allocator.allocate(_module(False), spec, "bpc")
    incremental = _timed_under(
        flat_mode,
        lambda: allocator.allocate(_module(True), spec, "bpc"),
        1,
    )
    return {
        "flat_mode": flat_mode,
        "bare_ms": round(bare * 1000.0, 3),
        "flat_ms": round(flat * 1000.0, 3),
        "incremental_ms": round(incremental * 1000.0, 3),
        "flat_speedup": round(bare / flat, 3) if flat else None,
    }


def _config_fingerprint(ctx: ExperimentContext) -> dict:
    return {
        "spec_scale": ctx.spec_scale,
        "cnn_scale": ctx.cnn_scale,
        "idft_points": ctx.idft_points,
        "seed": ctx.seed,
    }


def collect_record(
    ctx: ExperimentContext, label: str = "", *, measure_latency: bool = True
) -> dict:
    """Run the canonical matrix and return one history record (a dict).

    Results are memoized on *ctx*, so collecting after regenerating
    tables from the same context costs nothing extra.  ``measure_latency``
    adds the ``latency`` block (bare/flat/incremental wall ms); disable it
    for timing-free unit runs.
    """
    start = time.monotonic()
    programs: dict[str, dict] = {}
    for suite, platform, banks, method in CANONICAL_COMBOS:
        for result in ctx.results(suite, platform, banks, method):
            key = f"{suite}/{platform}:{banks}/{method}/{result.program}"
            programs[key] = {
                "reles": result.conflict_relevant,
                "static_conflicts": result.static_conflicts,
                "dynamic_conflicts": result.dynamic_conflicts,
                "spills": result.spills,
                "copies": result.copies_inserted,
                "cycles": result.cycles,
            }
    totals = {
        metric: sum(
            entry[metric] for entry in programs.values()
            if entry[metric] is not None
        )
        for metric in METRICS
    }
    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": _config_fingerprint(ctx),
        "wall_seconds": round(time.monotonic() - start, 3),
        "latency": measure_wall_latency() if measure_latency else None,
        "programs": programs,
        "totals": totals,
    }


def write_record(
    record: dict,
    directory: str = DEFAULT_HISTORY_DIR,
    *,
    prefix: str = "BENCH",
) -> str:
    """Write *record* as ``<prefix>_<timestamp>.json`` under *directory*.

    ``repro bench record`` uses the default ``BENCH`` prefix; ``repro
    loadgen --record`` writes ``LOADGEN_…`` records into the same
    history directory (same schema, so ``load_record`` reads both).
    """
    os.makedirs(directory, exist_ok=True)
    stamp = record.get("created", "").replace(":", "").replace("-", "")
    stamp = stamp.replace("T", "-").rstrip("Z") or "unstamped"
    path = os.path.join(directory, f"{prefix}_{stamp}.json")
    # Never clobber: same-second collections get a disambiguating suffix.
    serial = 1
    while os.path.exists(path):
        serial += 1
        path = os.path.join(directory, f"{prefix}_{stamp}.{serial}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_record(path: str) -> dict:
    """Read and validate one history record."""
    try:
        with open(path, encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise RecordError(f"{path}: unreadable record: {exc}") from exc
    if not isinstance(record, dict) or "schema" not in record:
        raise RecordError(f"{path}: not a history record (no schema field)")
    if record["schema"] != SCHEMA_VERSION:
        raise RecordError(
            f"{path}: schema {record['schema']} != supported {SCHEMA_VERSION}"
        )
    for required in ("config", "programs", "totals"):
        if required not in record:
            raise RecordError(f"{path}: record missing {required!r}")
    return record


@dataclass
class Delta:
    """One metric change between two records."""

    key: str
    metric: str
    old: float
    new: float

    @property
    def pct(self) -> float:
        if self.old == 0:
            return float("inf") if self.new else 0.0
        return (self.new - self.old) / self.old * 100.0

    def render(self) -> str:
        pct = self.pct
        pct_text = f"{pct:+.1f}%" if pct != float("inf") else "new"
        return (
            f"{self.key} {self.metric}: "
            f"{self.old:g} -> {self.new:g} ({pct_text})"
        )


@dataclass
class DiffReport:
    """Outcome of comparing two history records."""

    old_path: str
    new_path: str
    threshold_pct: float
    abs_floor: float
    config_mismatches: list[str] = field(default_factory=list)
    structural: list[str] = field(default_factory=list)
    regressions: list[Delta] = field(default_factory=list)
    improvements: list[Delta] = field(default_factory=list)
    #: Wall-latency movement (bare/flat/incremental ms).  Informational:
    #: timing is machine-dependent, so it never affects the exit code.
    latency_notes: list[str] = field(default_factory=list)
    compared: int = 0

    @property
    def comparable(self) -> bool:
        return not self.config_mismatches

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def exit_code(self) -> int:
        if not self.comparable:
            return 2
        return 1 if self.has_regressions else 0

    def render(self) -> str:
        lines = [
            f"bench diff: {self.old_path} -> {self.new_path}",
            f"  threshold {self.threshold_pct:g}% "
            f"(absolute floor {self.abs_floor:g}), "
            f"{self.compared} metrics compared",
        ]
        if self.config_mismatches:
            lines.append("  NOT COMPARABLE — config fingerprint differs:")
            lines.extend(f"    {m}" for m in self.config_mismatches)
            return "\n".join(lines)
        for title, deltas in (
            ("regressions", self.regressions),
            ("improvements", self.improvements),
        ):
            lines.append(f"  {title}: {len(deltas)}")
            lines.extend(f"    {d.render()}" for d in deltas)
        if self.structural:
            lines.append(f"  structural changes: {len(self.structural)}")
            lines.extend(f"    {s}" for s in self.structural)
        if self.latency_notes:
            lines.append("  wall latency (informational, never gates):")
            lines.extend(f"    {s}" for s in self.latency_notes)
        lines.append(
            "  RESULT: "
            + ("REGRESSION" if self.has_regressions else "ok")
        )
        return "\n".join(lines)


def diff_records(
    old: dict,
    new: dict,
    *,
    old_path: str = "<old>",
    new_path: str = "<new>",
    threshold_pct: float = 5.0,
    abs_floor: float = 1.0,
    allow_config_mismatch: bool = False,
) -> DiffReport:
    """Compare two records; deltas beyond both the relative threshold and
    the absolute floor count as regressions (higher) or improvements
    (lower).  ``reles`` changes and program set churn are *structural* —
    the workload itself moved — and are reported but never gate."""
    report = DiffReport(
        old_path=old_path,
        new_path=new_path,
        threshold_pct=threshold_pct,
        abs_floor=abs_floor,
    )
    if old.get("config") != new.get("config") and not allow_config_mismatch:
        old_config = old.get("config", {})
        new_config = new.get("config", {})
        for name in sorted(set(old_config) | set(new_config)):
            if old_config.get(name) != new_config.get(name):
                report.config_mismatches.append(
                    f"{name}: {old_config.get(name)!r} != "
                    f"{new_config.get(name)!r}"
                )
        return report
    old_programs = old.get("programs", {})
    new_programs = new.get("programs", {})
    for key in sorted(set(old_programs) - set(new_programs)):
        report.structural.append(f"removed: {key}")
    for key in sorted(set(new_programs) - set(old_programs)):
        report.structural.append(f"added: {key}")
    for key in sorted(set(old_programs) & set(new_programs)):
        old_entry, new_entry = old_programs[key], new_programs[key]
        if old_entry.get("reles") != new_entry.get("reles"):
            report.structural.append(
                f"reles changed: {key} "
                f"{old_entry.get('reles')} -> {new_entry.get('reles')}"
            )
        for metric in REGRESSION_METRICS:
            old_value = old_entry.get(metric)
            new_value = new_entry.get(metric)
            if old_value is None or new_value is None:
                continue
            report.compared += 1
            change = new_value - old_value
            bar = max(abs(old_value) * threshold_pct / 100.0, abs_floor)
            if change >= bar:
                report.regressions.append(
                    Delta(key, metric, old_value, new_value)
                )
            elif -change >= bar:
                report.improvements.append(
                    Delta(key, metric, old_value, new_value)
                )
    _diff_loadgen(old, new, report, threshold_pct, abs_floor)
    report.regressions.sort(key=lambda d: (-abs(d.pct), d.key, d.metric))
    report.improvements.sort(key=lambda d: (-abs(d.pct), d.key, d.metric))
    old_latency = old.get("latency") or {}
    new_latency = new.get("latency") or {}
    for name in ("bare_ms", "flat_ms", "incremental_ms", "flat_speedup"):
        old_value, new_value = old_latency.get(name), new_latency.get(name)
        if old_value is None or new_value is None:
            continue
        report.latency_notes.append(
            f"{name}: {old_value:g} -> {new_value:g}"
        )
    return report


def _diff_loadgen(
    old: dict,
    new: dict,
    report: DiffReport,
    threshold_pct: float,
    abs_floor: float,
) -> None:
    """Gate the ``loadgen`` blocks of two records, if both carry one.

    Only the deterministic counts gate (see
    :mod:`repro.service.loadgen`): a ``goodput`` drop or a ``failed``
    rise beyond the threshold, *any* new ``verify_failed``, and *any*
    sample bit-identity ``mismatched`` are regressions.  Shard-balance
    churn is structural (the fleet layout changed, like a program-set
    change).  Latency percentiles, throughput, and the degraded count
    are timing-dependent and land in the informational latency notes —
    the same never-gates rule the wall-latency block follows.
    """
    old_load = old.get("loadgen")
    new_load = new.get("loadgen")
    if not isinstance(old_load, dict) or not isinstance(new_load, dict):
        return
    goodput_old = old_load.get("goodput")
    goodput_new = new_load.get("goodput")
    if goodput_old is not None and goodput_new is not None:
        report.compared += 1
        bar = max(abs(goodput_old) * threshold_pct / 100.0, abs_floor)
        drop = goodput_old - goodput_new
        if drop >= bar:
            report.regressions.append(
                Delta("loadgen", "goodput", goodput_old, goodput_new)
            )
        elif -drop >= bar:
            report.improvements.append(
                Delta("loadgen", "goodput", goodput_old, goodput_new)
            )
    for metric, any_increase in (
        ("failed", False),
        ("verify_failed", True),
    ):
        old_value = old_load.get(metric)
        new_value = new_load.get(metric)
        if old_value is None or new_value is None:
            continue
        report.compared += 1
        change = new_value - old_value
        bar = (
            1.0
            if any_increase
            else max(abs(old_value) * threshold_pct / 100.0, abs_floor)
        )
        if change >= bar:
            report.regressions.append(
                Delta("loadgen", metric, old_value, new_value)
            )
        elif -change >= bar:
            report.improvements.append(
                Delta("loadgen", metric, old_value, new_value)
            )
    mismatched = (new_load.get("samples") or {}).get("mismatched")
    if mismatched:
        report.compared += 1
        old_mismatched = (old_load.get("samples") or {}).get("mismatched", 0)
        report.regressions.append(
            Delta("loadgen", "sample_mismatched", old_mismatched, mismatched)
        )
    old_shards = old_load.get("shards") or {}
    new_shards = new_load.get("shards") or {}
    if sorted(old_shards) != sorted(new_shards):
        report.structural.append(
            f"loadgen shard set changed: {sorted(old_shards)} -> "
            f"{sorted(new_shards)}"
        )
    elif old_shards != new_shards:
        report.structural.append(
            "loadgen shard balance changed: "
            + ", ".join(
                f"{name} {old_shards[name]}->{new_shards[name]}"
                for name in sorted(old_shards)
                if old_shards[name] != new_shards[name]
            )
        )
    old_lat = old_load.get("latency_ms") or {}
    new_lat = new_load.get("latency_ms") or {}
    for name in ("p50", "p99", "p999"):
        old_value, new_value = old_lat.get(name), new_lat.get(name)
        if old_value is None or new_value is None:
            continue
        report.latency_notes.append(
            f"loadgen {name}_ms: {old_value:g} -> {new_value:g}"
        )
    for name in ("throughput_rps", "degraded"):
        old_value, new_value = old_load.get(name), new_load.get(name)
        if old_value is None or new_value is None:
            continue
        report.latency_notes.append(
            f"loadgen {name}: {old_value:g} -> {new_value:g}"
        )

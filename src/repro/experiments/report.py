"""Plain-text rendering and small statistics helpers for experiments."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geomean(values: Iterable[float], *, floor: float = 1e-9) -> float:
    """Geometric mean; non-positive entries are clamped to *floor* (the
    paper reports geometric means over counts that can reach zero)."""
    values = list(values)
    if not values:
        return 0.0
    total = 0.0
    for value in values:
        total += math.log(max(floor, float(value)))
    return math.exp(total / len(values))


def percent(numerator: float, denominator: float) -> float:
    """Safe percentage."""
    if denominator == 0:
        return 0.0
    return 100.0 * numerator / denominator


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
            return str(int(round(value)))
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    note: str | None = None,
) -> str:
    """Render an aligned monospace table with a title line."""
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [title, fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in text_rows)
    if note:
        lines.append(note)
    return "\n".join(lines)

"""Experiment harness: run suites through the pipeline and collect the
metrics every table and figure is built from.

The unit of measurement is a *program* (a suite executable).  For each
(program, register file, method) combination the harness runs the Fig. 4
pipeline on every function, measures static conflicts (always), expected
dynamic conflicts (Platform-RV#2), and DSA cycles (Platform-DSA), and
aggregates.

:class:`ExperimentContext` memoizes suite generation and per-combination
results so the table/figure modules can share runs (Table II and Table
III, for example, consume the same RV#1 sweeps).

With ``jobs > 1`` (CLI ``--jobs`` / env ``REPRO_JOBS``), :func:`run_suite`
fans the per-program work across a process pool.  Programs are
independent — each worker runs whole pipelines on its own function clones
— and ``pool.map`` preserves suite order, so the merged result list is
identical to a serial run.

Observability (:mod:`repro.obs`) crosses the pool the same way the
``--pass-stats`` counters do: each worker resets its
tracer/metrics/audit/profiler around every task, ships one picklable
snapshot per program back, and the parent merges snapshots in
``pool.map`` (= suite) order — so the merged Chrome trace has one
deterministic track per program, its span tree is structurally identical
to a serial run's, and hotspot-profile totals are bit-equal at any job
count.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from .. import obs
from ..banks.register_file import RegisterFile
from ..ir.types import FP, RegClass
from ..obs import TRACER
from ..passes.instrument import GLOBAL
from ..prescount.pipeline import PipelineConfig, run_pipeline
from ..sim.dsa import DsaMachine
from ..sim.dynamic import estimate_dynamic_conflicts
from ..sim.machine import platform_dsa, platform_rv1, platform_rv2
from ..sim.ooo import OooConfig, OooMachine, normalize_machine_spec
from ..sim.static_stats import analyze_static, count_conflict_relevant
from ..workloads.cnn import cnn_suite
from ..workloads.dsa_ops import dsa_suite
from ..workloads.specfp import Suite, SuiteProgram, specfp_suite


@dataclass
class ProgramResult:
    """Aggregated metrics of one program under one (file, method) pair."""

    program: str
    category: str
    suite: str
    method: str
    file_key: str
    conflict_relevant: int = 0
    static_conflicts: int = 0
    bank_conflicts: int = 0
    subgroup_violations: int = 0
    dynamic_conflicts: int | None = None
    dynamic_instances: int | None = None
    spills: int = 0
    spill_instructions: int = 0
    copies_inserted: int = 0
    copies_removed: int = 0
    cycles: float | None = None
    conflict_cycles: float | None = None
    alignment_cycles: float | None = None
    machine: str = "dsa"
    functions: int = 0

    @property
    def is_conflict_relevant(self) -> bool:
        return self.conflict_relevant > 0

    @property
    def is_conflict_free(self) -> bool:
        return self.is_conflict_relevant and self.static_conflicts == 0


def build_machine(
    register_file: RegisterFile,
    regclass: RegClass = FP,
    machine_spec: dict | str | None = None,
) -> DsaMachine | OooMachine:
    """Instantiate the cycle model a (normalized) machine spec names.

    ``None``/``"dsa"`` builds the in-order :class:`DsaMachine`; an
    ``"ooo"`` spec builds an :class:`OooMachine` with the spec's pipeline
    parameters.  Both expose ``run(function, am=am)`` and a report with
    ``cycles`` / ``conflict_penalty_cycles`` / ``alignment_penalty_cycles``.
    """
    spec = normalize_machine_spec(machine_spec)
    if spec["model"] == "dsa":
        return DsaMachine(register_file, regclass)
    return OooMachine(register_file, regclass, config=OooConfig.from_dict(spec))


def run_program(
    program: SuiteProgram,
    register_file: RegisterFile,
    method: str,
    *,
    suite_name: str = "",
    file_key: str = "",
    measure_dynamic: bool = False,
    measure_cycles: bool = False,
    regclass: RegClass = FP,
    config_overrides: dict | None = None,
    machine_spec: dict | str | None = None,
) -> ProgramResult:
    """Run one program through the pipeline and measure it."""
    spec = normalize_machine_spec(machine_spec)
    result = ProgramResult(
        program=program.name,
        category=program.category,
        suite=suite_name,
        method=method,
        file_key=file_key,
        machine=spec["model"],
    )
    machine = (
        build_machine(register_file, regclass, spec) if measure_cycles else None
    )
    with TRACER.span(
        program.name,
        category="program",
        suite=suite_name,
        method=method,
        file=file_key,
    ):
        for function in program.functions():
            with TRACER.span(function.name, category="function"):
                overrides = dict(config_overrides or {})
                config = PipelineConfig(register_file, method, regclass, **overrides)
                pipe = run_pipeline(function, config)
                allocated = pipe.function
                # The pipeline's analysis cache is still valid for the
                # allocated function (allocation preserves the CFG-level
                # analyses), so the measurement passes keep hitting it.
                am = pipe.analyses
                static = analyze_static(allocated, register_file, regclass, am=am)
                result.functions += 1
                result.conflict_relevant += count_conflict_relevant(
                    function, regclass
                )
                result.static_conflicts += static.conflicts
                result.bank_conflicts += static.bank_conflicts
                result.subgroup_violations += static.subgroup_violations
                result.spills += pipe.spill_count
                result.spill_instructions += pipe.allocation.spill_instructions
                result.copies_inserted += pipe.copies_inserted
                result.copies_removed += pipe.allocation.copies_removed
                if measure_dynamic:
                    # The paper's QEMU methodology counts *executed conflict
                    # sites* (Table IV's dynamic counts sit below the static
                    # ones), so the harness reports the site estimate; raw
                    # per-execution instance counts stay available in
                    # `dynamic_instances`.  Functions the test input never
                    # reaches (coverage metadata from the suite generator)
                    # contribute nothing dynamically.
                    result.dynamic_conflicts = result.dynamic_conflicts or 0
                    result.dynamic_instances = result.dynamic_instances or 0
                    if function.attrs.get("covered", True):
                        dynamic = estimate_dynamic_conflicts(
                            allocated, register_file, regclass, am=am
                        )
                        result.dynamic_conflicts += round(dynamic.conflicting_sites)
                        result.dynamic_instances += (
                            dynamic.dynamic_conflicts
                            + dynamic.dynamic_subgroup_violations
                        )
                if machine is not None:
                    report = machine.run(allocated, am=am)
                    result.cycles = (result.cycles or 0.0) + report.cycles
                    result.conflict_cycles = (
                        (result.conflict_cycles or 0.0)
                        + report.conflict_penalty_cycles
                    )
                    result.alignment_cycles = (
                        (result.alignment_cycles or 0.0)
                        + report.alignment_penalty_cycles
                    )
    return result


@dataclass
class TaskFailure:
    """One payload that kept failing after every retry."""

    index: int
    label: str
    error: str
    attempts: int

    def __str__(self) -> str:
        return f"{self.label or f'payload {self.index}'}: {self.error}"


class PartialSuiteError(RuntimeError):
    """A suite run lost programs to worker failures.

    Carries the *partial* results (suite order preserved, failed
    programs absent) plus one :class:`TaskFailure` per lost program, so
    callers can report what did complete and exit non-zero instead of
    dying on a bare ``BrokenProcessPool``.
    """

    def __init__(self, results: list, failures: list[TaskFailure]):
        self.results = results
        self.failures = failures
        super().__init__(
            f"{len(failures)} of {len(results) + len(failures)} programs "
            "failed after retries"
        )

    def render(self) -> str:
        lines = [
            f"suite run incomplete: {len(self.failures)} program(s) failed "
            f"after retries, {len(self.results)} completed"
        ]
        for failure in self.failures:
            first = failure.error.strip().splitlines()
            lines.append(
                f"  {failure.label or f'payload {failure.index}'} "
                f"({failure.attempts} attempts): {first[-1] if first else '?'}"
            )
        return "\n".join(lines)


def run_tasks(
    fn,
    payloads: list,
    *,
    jobs: int,
    retries: int = 1,
    backoff_s: float = 0.0,
    labels: list[str] | None = None,
) -> tuple[list, list[TaskFailure]]:
    """Fan *payloads* over a process pool, surviving worker crashes.

    ``pool.map`` turns one crashed worker (segfault, ``os._exit``, OOM
    kill) into a :class:`BrokenProcessPool` that aborts everything.
    This helper instead collects each payload's outcome individually:
    a payload that raises — or whose pool dies under it — is retried
    (``retries`` times, on a fresh pool, after an exponential
    ``backoff_s * 2**(attempt-1)`` seconds, capped at 2 s), and
    innocent victims of a neighbour's crash are retried with it.
    Returns ``(results, failures)`` where ``results`` is
    payload-ordered with ``None`` at failed indexes.

    The experiment harness (:func:`run_suite`) and the allocation
    service's batch executor (:mod:`repro.service.queue`) both run on
    this.
    """
    results: list = [None] * len(payloads)
    errors: list[str | None] = [None] * len(payloads)
    attempts = [0] * len(payloads)
    pending = list(range(len(payloads)))

    def _format(exc: BaseException) -> str:
        return "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()

    for attempt in range(retries + 1):
        if not pending:
            break
        if attempt:
            obs.METRICS.inc("harness.task_retries", len(pending))
            if backoff_s:
                time.sleep(min(backoff_s * (2 ** (attempt - 1)), 2.0))
        still_failing: list[int] = []
        if attempt == 0:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))
            ) as pool:
                futures = {}
                for i in pending:
                    try:
                        futures[i] = pool.submit(fn, payloads[i])
                    except Exception as exc:  # pool broken at submit
                        attempts[i] += 1
                        errors[i] = _format(exc)
                        still_failing.append(i)
                for i, future in futures.items():
                    attempts[i] += 1
                    try:
                        results[i] = future.result()
                        errors[i] = None
                    except Exception as exc:
                        errors[i] = _format(exc)
                        still_failing.append(i)
        else:
            # Retry rounds isolate each payload in its own single-worker
            # pool: a payload that keeps crashing its process can then
            # only take itself down, never an innocent neighbour that
            # shared the first round's pool with it.
            for i in pending:
                attempts[i] += 1
                try:
                    with ProcessPoolExecutor(max_workers=1) as pool:
                        results[i] = pool.submit(fn, payloads[i]).result()
                    errors[i] = None
                except Exception as exc:
                    errors[i] = _format(exc)
                    still_failing.append(i)
        pending = sorted(still_failing)
    failures = [
        TaskFailure(
            index=i,
            label=labels[i] if labels else "",
            error=errors[i] or "unknown error",
            attempts=attempts[i],
        )
        for i in pending
    ]
    return results, failures


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a job count: ``None`` falls back to the ``REPRO_JOBS``
    environment variable, then to serial execution."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    return max(1, int(jobs))


def _run_program_task(
    payload: tuple,
) -> tuple[ProgramResult, dict | None, dict | None]:
    """Process-pool worker: one program, plus its observability deltas.

    When the parent runs with ``--pass-stats`` (or any :mod:`repro.obs`
    layer on) the payload tells the worker to record and ship its
    counters/spans back for merging.  Everything is reset around the task
    because worker processes are reused (and, under fork, inherit the
    parent's state): each snapshot must cover exactly one program, or
    merging would re-count everything the process saw before.
    """
    program, register_file, method, kwargs, instrumented, obs_flags = payload
    if instrumented:
        GLOBAL.enable()
        GLOBAL.reset()
    obs.apply_flags(obs_flags)
    obs.reset_all()
    result = run_program(program, register_file, method, **kwargs)
    obs_snapshot = obs.snapshot_all() if obs.any_enabled() else None
    obs.reset_all()
    if not instrumented:
        return result, None, obs_snapshot
    snapshot = GLOBAL.snapshot()
    GLOBAL.reset()
    return result, snapshot, obs_snapshot


def run_suite(
    suite: Suite,
    register_file: RegisterFile,
    method: str,
    *,
    file_key: str = "",
    measure_dynamic: bool = False,
    measure_cycles: bool = False,
    config_overrides: dict | None = None,
    machine_spec: dict | str | None = None,
    jobs: int | None = 1,
) -> list[ProgramResult]:
    """Run every program of *suite* and return one result per program.

    ``jobs > 1`` distributes programs over a process pool; the result
    list is ordered and valued identically to a serial run.  A program
    whose worker raises — or crashes the worker process outright — is
    retried once on a fresh pool; if it still fails, the completed
    programs are reported through :class:`PartialSuiteError` instead of
    the whole suite dying on ``BrokenProcessPool``.
    """
    kwargs = dict(
        suite_name=suite.name,
        file_key=file_key,
        measure_dynamic=measure_dynamic,
        measure_cycles=measure_cycles,
        config_overrides=config_overrides,
        machine_spec=normalize_machine_spec(machine_spec),
    )
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(suite.programs) <= 1:
        return [
            run_program(program, register_file, method, **kwargs)
            for program in suite.programs
        ]
    payloads = [
        (program, register_file, method, kwargs, GLOBAL.enabled,
         obs.enabled_flags())
        for program in suite.programs
    ]
    # Outcomes are collected per payload (suite order), so snapshots
    # merge onto tracer tracks (and into metrics/audit) deterministically
    # regardless of which worker finished first.
    outcomes, failures = run_tasks(
        _run_program_task,
        payloads,
        jobs=jobs,
        retries=1,
        labels=[program.name for program in suite.programs],
    )
    results: list[ProgramResult] = []
    for outcome in outcomes:
        if outcome is None:
            continue
        result, snapshot, obs_snapshot = outcome
        GLOBAL.merge(snapshot)
        obs.merge_all(obs_snapshot, track=result.program)
        results.append(result)
    if failures:
        raise PartialSuiteError(results, failures)
    return results


@dataclass
class ExperimentContext:
    """Shared, memoized state for regenerating the paper's evaluation.

    Attributes:
        spec_scale: SPECfp suite scale (1.0 = full Table I calibration;
            the default keeps the whole evaluation laptop-sized).
        cnn_scale: CNN-KERNEL suite scale.
        idft_points: IDFT size for the DSA suite.
        seed: Master seed for all generators.
        jobs: Worker processes per suite run (``None`` = honor
            ``REPRO_JOBS``, else serial).  Results are independent of the
            job count; only wall time changes.
    """

    spec_scale: float = 0.05
    cnn_scale: float = 0.5
    idft_points: int = 16
    seed: int = 0
    jobs: int | None = None
    _suites: dict = field(default_factory=dict, repr=False)
    _results: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Suites
    # ------------------------------------------------------------------
    def suite(self, name: str) -> Suite:
        if name not in self._suites:
            if name == "SPECfp":
                self._suites[name] = specfp_suite(self.spec_scale, self.seed)
            elif name == "CNN-KERNEL":
                self._suites[name] = cnn_suite(self.cnn_scale, self.seed)
            elif name == "DSA-OP":
                self._suites[name] = dsa_suite(self.seed, self.idft_points)
            else:
                raise KeyError(f"unknown suite {name!r}")
        return self._suites[name]

    # ------------------------------------------------------------------
    # Register files
    # ------------------------------------------------------------------
    def register_file(self, platform: str, banks: int) -> RegisterFile:
        if platform == "rv1":
            return platform_rv1().file_for(banks)
        if platform == "rv2":
            return platform_rv2().file_for(banks)
        if platform == "dsa":
            return platform_dsa().file_for(banks)
        raise KeyError(f"unknown platform {platform!r}")

    # ------------------------------------------------------------------
    # Memoized runs
    # ------------------------------------------------------------------
    def results(
        self,
        suite_name: str,
        platform: str,
        banks: int,
        method: str,
        *,
        measure_dynamic: bool | None = None,
        measure_cycles: bool | None = None,
        machine_spec: dict | str | None = None,
    ) -> list[ProgramResult]:
        """Per-program results for one combination (cached)."""
        if measure_dynamic is None:
            measure_dynamic = platform == "rv2"
        if measure_cycles is None:
            measure_cycles = platform == "dsa"
        spec = normalize_machine_spec(machine_spec)
        # Cached artifacts never alias across machine models: the memo
        # key carries the full canonical spec (None only for the
        # default in-order machine, matching pre-OoO keys).
        machine_token = (
            None if spec["model"] == "dsa" else tuple(sorted(spec.items()))
        )
        key = (
            suite_name, platform, banks, method, measure_dynamic,
            measure_cycles, machine_token,
        )
        if key not in self._results:
            register_file = self.register_file(platform, banks)
            file_key = f"{platform}:{banks}"
            self._results[key] = run_suite(
                self.suite(suite_name),
                register_file,
                method,
                file_key=file_key,
                measure_dynamic=measure_dynamic,
                measure_cycles=measure_cycles,
                machine_spec=spec,
                jobs=self.jobs,
            )
        return self._results[key]

    def combined_results(
        self, platform: str, banks: int, method: str, **kwargs
    ) -> list[ProgramResult]:
        """SPECfp + CNN-KERNEL combined (Tables II and IV aggregate both)."""
        return self.results("SPECfp", platform, banks, method, **kwargs) + self.results(
            "CNN-KERNEL", platform, banks, method, **kwargs
        )

    def function_static(
        self, suite_name: str, platform: str, banks: int, method: str = "non"
    ) -> list[tuple[str, int, int]]:
        """Per-*function* (name, conflict-relevant count, static conflicts)
        triples — Fig. 1 categorizes individual tests, not whole programs."""
        key = ("function_static", suite_name, platform, banks, method)
        if key not in self._results:
            register_file = self.register_file(platform, banks)
            triples: list[tuple[str, int, int]] = []
            for function in self.suite(suite_name).functions():
                config = PipelineConfig(register_file, method)
                pipe = run_pipeline(function, config)
                static = analyze_static(
                    pipe.function, register_file, am=pipe.analyses
                )
                triples.append(
                    (
                        function.name,
                        count_conflict_relevant(function),
                        static.conflicts,
                    )
                )
            self._results[key] = triples
        return self._results[key]

"""Startup self-check: prove the flat core is bit-identical, right now.

The flat-array hot path (:mod:`repro.ir.flat`) is only acceptable if it
is invisible in the outputs.  ``repro --selfcheck`` (and ``repro
serve``, at startup) allocates one canned kernel twice per method — once
with ``REPRO_FAST=off`` (the original object-graph implementations) and
once under the currently resolved mode — and compares the full result
*artifact bytes* (allocated IR, assignment, every statistic).  Any
difference raises :class:`SelfCheckError`; a service must hard-fail at
boot rather than serve silently diverging allocations.

When ``REPRO_FAST`` resolves to ``off`` the check still runs, comparing
against the pure-python flat backend, so it never degenerates into
comparing a path with itself.
"""

from __future__ import annotations

import os

from .ir.flat import fast_mode

#: Methods covered by one self-check run.
SELFCHECK_METHODS = ("non", "bcr", "bpc")

#: Register file the canned kernel is allocated against.
SELFCHECK_FILE = {"registers": 16, "banks": 2}


class SelfCheckError(RuntimeError):
    """The flat path diverged from the object path on the canned kernel."""


def _canned_kernel():
    """A small loop kernel exercising copies, spilling pressure, and
    repeated operands (the shapes the flat CSR must get exactly right)."""
    from .ir import IRBuilder

    b = IRBuilder("selfcheck")
    xs = [b.const(float(i + 1)) for i in range(6)]
    acc = b.const(0.0)
    with b.loop(trip_count=16):
        for i in range(len(xs) - 1):
            product = b.arith("fmul", xs[i], xs[i + 1])
            b.arith_into(acc, "fadd", acc, product)
        square = b.arith("fmul", acc, acc)
        b.arith_into(acc, "fadd", acc, square)
    b.ret(acc)
    return b.finish()


def _artifact_under(mode: str, ir: str, method: str) -> bytes:
    """Artifact bytes for the canned kernel with ``REPRO_FAST`` forced."""
    from .service.artifact import artifact_bytes, build_artifact

    previous = os.environ.get("REPRO_FAST")
    os.environ["REPRO_FAST"] = mode
    try:
        return artifact_bytes(build_artifact(ir, SELFCHECK_FILE, method))
    finally:
        if previous is None:
            os.environ.pop("REPRO_FAST", None)
        else:
            os.environ["REPRO_FAST"] = previous


def run_selfcheck(methods=SELFCHECK_METHODS) -> dict:
    """Allocate the canned kernel both ways; raise on any byte diff.

    Returns a small summary dict (``mode``, ``methods``) on success.
    """
    from .ir import print_function

    mode = fast_mode()
    flat_mode = mode if mode != "off" else "python"
    ir = print_function(_canned_kernel())
    for method in methods:
        baseline = _artifact_under("off", ir, method)
        fast = _artifact_under(flat_mode, ir, method)
        if baseline != fast:
            raise SelfCheckError(
                f"flat path (REPRO_FAST={flat_mode}) diverged from the "
                f"object path on method {method!r}: artifact bytes differ "
                f"({len(baseline)} vs {len(fast)} bytes)"
            )
    return {"mode": flat_mode, "methods": tuple(methods), "ok": True}

"""Observability for the reproduction: tracing, metrics, decision audit.

Three independent, individually-enableable layers, all off by default and
overhead-free while off (outputs stay bit-identical):

* :data:`TRACER` (:mod:`.tracer`) — nested spans over every pipeline
  phase, allocator stage, analysis computation, and harness program run,
  exported as Chrome-trace JSON (``--trace out.json``);
* :data:`METRICS` (:mod:`.metrics`) — counters/gauges/histograms (spill
  counts, per-bank pressure, RCG colorability failures, per-phase
  conflict-cost deltas), dumped machine-readably (``--metrics out.json``);
* :data:`AUDIT` (:mod:`.audit`) — the per-RCG-node Algorithm 1 decision
  log behind ``--explain vreg``.

All three snapshot to picklable plain data and merge deterministically,
which is how the parallel experiment harness folds worker-process
observations back into the parent (see
:mod:`repro.experiments.harness`).  The module-level helpers below move
those three snapshots as one unit.

See ``docs/OBSERVABILITY.md`` for the user guide and worked examples.
"""

from __future__ import annotations

from .audit import GLOBAL as AUDIT
from .audit import AuditLog, AuditRecord
from .metrics import GLOBAL as METRICS
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import GLOBAL as TRACER
from .tracer import Span, Tracer

__all__ = [
    "AUDIT",
    "AuditLog",
    "AuditRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "Span",
    "TRACER",
    "Tracer",
    "any_enabled",
    "enabled_flags",
    "apply_flags",
    "snapshot_all",
    "merge_all",
    "reset_all",
]


def any_enabled() -> bool:
    """True when at least one observability layer is recording."""
    return TRACER.enabled or METRICS.enabled or AUDIT.enabled


def enabled_flags() -> tuple[bool, bool, bool]:
    """(trace, metrics, audit) enablement — picklable worker payload."""
    return (TRACER.enabled, METRICS.enabled, AUDIT.enabled)


def apply_flags(flags: tuple[bool, bool, bool] | None) -> None:
    """Enable the layers a parent process's :func:`enabled_flags` named."""
    if flags is None:
        return
    trace, metrics, audit = flags
    TRACER.enable(trace)
    METRICS.enable(metrics)
    AUDIT.enable(audit)


def snapshot_all() -> dict:
    """One picklable snapshot of every enabled layer (empty when off)."""
    return {
        "trace": TRACER.snapshot() if TRACER.enabled else None,
        "metrics": METRICS.snapshot() if METRICS.enabled else None,
        "audit": AUDIT.snapshot() if AUDIT.enabled else None,
    }


def merge_all(snapshot: dict | None, track: str | None = None) -> None:
    """Fold a worker's :func:`snapshot_all` into the global layers.

    *track* names the tracer track the snapshot's spans land on (the
    harness passes the program name).
    """
    if not snapshot:
        return
    TRACER.merge(snapshot.get("trace"), track=track)
    METRICS.merge(snapshot.get("metrics"))
    AUDIT.merge(snapshot.get("audit"))


def reset_all() -> None:
    """Clear all three layers (enablement is left untouched)."""
    TRACER.reset()
    METRICS.reset()
    AUDIT.reset()

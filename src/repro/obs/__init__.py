"""Observability for the reproduction: tracing, metrics, audit, profiling.

Four independent, individually-enableable layers, all off by default and
overhead-free while off (outputs stay bit-identical):

* :data:`TRACER` (:mod:`.tracer`) — nested spans over every pipeline
  phase, allocator stage, analysis computation, and harness program run,
  exported as Chrome-trace JSON (``--trace out.json``);
* :data:`METRICS` (:mod:`.metrics`) — counters/gauges/histograms (spill
  counts, per-bank pressure, RCG colorability failures, per-phase
  conflict-cost deltas), dumped machine-readably (``--metrics out.json``);
* :data:`AUDIT` (:mod:`.audit`) — the per-RCG-node Algorithm 1 decision
  log behind ``--explain vreg``;
* :data:`PROFILE` (:mod:`.profile`) — the conflict hotspot profiler:
  every conflict stall cycle attributed to its
  (function, loop nest, block, instruction, bank pair) site, rendered as
  top-N tables, annotated IR listings, or flamegraph folded stacks
  (``--profile out.json``).

All four snapshot to picklable plain data and merge deterministically,
which is how the parallel experiment harness folds worker-process
observations back into the parent (see
:mod:`repro.experiments.harness`).  The module-level helpers below move
those four snapshots as one unit.

On top of the four layers, :mod:`.telemetry` adds the *fleet* layer the
sharded service uses: :data:`TELEMETRY` (cross-process distributed
tracing via :class:`TraceContext` / ``X-Repro-Trace``), :data:`EVENTS`
(JSONL request events), :class:`SLOTracker`, :class:`StreamingHistogram`
/ :class:`RingSeries` aggregates, and the Prometheus text exposition
pair :func:`render_prometheus` / :func:`parse_prometheus`.  It follows
the same protocol: off by default, zero effect on outputs.

See ``docs/OBSERVABILITY.md`` for the user guide and worked examples.
"""

from __future__ import annotations

from .audit import GLOBAL as AUDIT
from .audit import AuditLog, AuditRecord
from .metrics import GLOBAL as METRICS
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import GLOBAL as PROFILE
from .profile import ConflictProfiler, SiteStats, loop_paths
from .telemetry import (
    EVENTS,
    TELEMETRY,
    TRACE_HEADER,
    EventLog,
    RingSeries,
    SLOTracker,
    StreamingHistogram,
    TraceContext,
    TraceRecorder,
    chrome_trace,
    orphan_spans,
    parse_prometheus,
    prometheus_name,
    render_prometheus,
)
from .tracer import GLOBAL as TRACER
from .tracer import Span, Tracer

__all__ = [
    "AUDIT",
    "AuditLog",
    "AuditRecord",
    "ConflictProfiler",
    "Counter",
    "EVENTS",
    "EventLog",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "PROFILE",
    "RingSeries",
    "SLOTracker",
    "SiteStats",
    "Span",
    "StreamingHistogram",
    "TELEMETRY",
    "TRACER",
    "TRACE_HEADER",
    "TraceContext",
    "TraceRecorder",
    "Tracer",
    "any_enabled",
    "apply_flags",
    "chrome_trace",
    "enabled_flags",
    "loop_paths",
    "merge_all",
    "orphan_spans",
    "parse_prometheus",
    "prometheus_name",
    "render_prometheus",
    "reset_all",
    "snapshot_all",
]


def any_enabled() -> bool:
    """True when at least one observability layer is recording."""
    return (
        TRACER.enabled or METRICS.enabled or AUDIT.enabled or PROFILE.enabled
    )


def enabled_flags() -> tuple[bool, bool, bool, bool]:
    """(trace, metrics, audit, profile) enablement — picklable payload."""
    return (TRACER.enabled, METRICS.enabled, AUDIT.enabled, PROFILE.enabled)


def apply_flags(flags: tuple[bool, ...] | None) -> None:
    """Enable the layers a parent process's :func:`enabled_flags` named.

    Three-element tuples (pre-profiler snapshots) are still accepted.
    """
    if flags is None:
        return
    trace, metrics, audit, *rest = flags
    TRACER.enable(trace)
    METRICS.enable(metrics)
    AUDIT.enable(audit)
    PROFILE.enable(bool(rest[0]) if rest else False)


def snapshot_all() -> dict:
    """One picklable snapshot of every enabled layer (empty when off)."""
    return {
        "trace": TRACER.snapshot() if TRACER.enabled else None,
        "metrics": METRICS.snapshot() if METRICS.enabled else None,
        "audit": AUDIT.snapshot() if AUDIT.enabled else None,
        "profile": PROFILE.snapshot() if PROFILE.enabled else None,
    }


def merge_all(snapshot: dict | None, track: str | None = None) -> None:
    """Fold a worker's :func:`snapshot_all` into the global layers.

    *track* names the tracer track the snapshot's spans land on (the
    harness passes the program name).
    """
    if not snapshot:
        return
    TRACER.merge(snapshot.get("trace"), track=track)
    METRICS.merge(snapshot.get("metrics"))
    AUDIT.merge(snapshot.get("audit"))
    PROFILE.merge(snapshot.get("profile"))


def reset_all() -> None:
    """Clear every layer — the four batch layers plus the fleet
    telemetry buffers (enablement is left untouched)."""
    TRACER.reset()
    METRICS.reset()
    AUDIT.reset()
    PROFILE.reset()
    TELEMETRY.reset()
    EVENTS.reset()

"""Metrics registry: counters, gauges, and histograms for pipeline runs.

Instrumented code records *facts* — spills, evictions, per-bank pressure,
RCG colorability failures, per-phase conflict-cost deltas — against the
process-wide :data:`GLOBAL` registry; ``--metrics out.json`` dumps the
whole registry machine-readably so bench scripts and notebooks consume
numbers instead of scraping stdout.

Three instrument kinds:

* **counter** — monotonically accumulating count (``inc``);
* **gauge** — last-seen value, with the running maximum kept alongside
  (``set``); gauges merge across worker processes by *maximum*, the only
  order-independent choice;
* **histogram** — a :class:`~repro.obs.telemetry.StreamingHistogram`:
  count/total/min/max plus O(1) power-of-two buckets (``observe``), so
  percentile estimates and Prometheus exposition need no per-sample
  bound scan.

The registry is **disabled by default**; every recording method
early-returns on ``enabled`` so call sites need no guard (guard only when
*computing* the value is itself expensive).  Hot loops that record many
histogram samples batch them through :meth:`MetricsRegistry.observe_many`
(one lock round-trip per batch).  Snapshots are plain dicts, picklable
across the process pool, and :meth:`MetricsRegistry.merge` is commutative
over counters and histograms and max-combining over gauges, so parallel
harness runs aggregate to the same totals as serial ones.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from .telemetry import StreamingHistogram

__all__ = ["GLOBAL", "Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically accumulating count."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-seen value, with the running maximum kept alongside."""

    value: float = 0.0
    max: float = float("-inf")
    samples: int = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value
        self.samples += 1


class Histogram(StreamingHistogram):
    """Streaming count/total/min/max summary with power-of-two buckets.

    Inherits the O(1) ``observe`` / ``merge`` / ``quantile`` machinery
    from :class:`~repro.obs.telemetry.StreamingHistogram`; registered
    here so ``--metrics`` documents keep their historical shape (plus a
    ``buckets`` map).
    """


@dataclass
class MetricsRegistry:
    """Named counters/gauges/histograms; disabled (no-op) by default."""

    enabled: bool = False
    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------
    def enable(self, on: bool = True) -> None:
        self.enabled = on

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    # ------------------------------------------------------------------
    # Recording (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.counters.setdefault(name, Counter()).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.gauges.setdefault(name, Gauge()).set(value)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.histograms.setdefault(name, Histogram()).observe(value)

    def observe_many(self, samples) -> None:
        """Record ``[(name, value), ...]`` under one lock round-trip —
        the batched form hot loops (the pass manager) use."""
        if not self.enabled:
            return
        with self._lock:
            histograms = self.histograms
            for name, value in samples:
                hist = histograms.get(name)
                if hist is None:
                    hist = histograms[name] = Histogram()
                hist.observe(value)

    # ------------------------------------------------------------------
    # Pool-safe aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict copy of every instrument (picklable)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self.counters.items()},
                "gauges": {
                    n: {"value": g.value, "max": g.max, "samples": g.samples}
                    for n, g in self.gauges.items()
                },
                "histograms": {
                    n: {
                        "count": h.count,
                        "total": h.total,
                        "min": h.min,
                        "max": h.max,
                        "buckets": {
                            str(exp): c for exp, c in sorted(h.buckets.items())
                        },
                    }
                    for n, h in self.histograms.items()
                },
            }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a worker :meth:`snapshot` into this registry.

        Counters and histograms add; gauges keep the maximum (and the
        latest value seen by merge order for ``value``), so merging is
        insensitive to worker completion order.
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counters.setdefault(name, Counter()).inc(value)
            for name, g in snapshot.get("gauges", {}).items():
                gauge = self.gauges.setdefault(name, Gauge())
                gauge.value = g["value"]
                if g["max"] > gauge.max:
                    gauge.max = g["max"]
                gauge.samples += g["samples"]
            for name, h in snapshot.get("histograms", {}).items():
                self.histograms.setdefault(name, Histogram()).merge(h)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """The ``--metrics out.json`` document: snapshot plus derived
        histogram means, with non-finite empty-instrument bounds nulled."""
        doc = self.snapshot()
        for name, h in doc["histograms"].items():
            hist = self.histograms[name]
            h["mean"] = hist.mean
            if not hist.count:
                h["min"] = h["max"] = None
        for g in doc["gauges"].values():
            if not g["samples"]:
                g["max"] = None
        return doc

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)

    def render(self) -> str:
        """Human-readable dump (for ``--metrics -``)."""
        lines = ["metrics"]
        if self.counters:
            lines.append("  counters")
            for name, c in sorted(self.counters.items()):
                lines.append(f"    {name:<40} {c.value:g}")
        if self.gauges:
            lines.append("  gauges (last / max)")
            for name, g in sorted(self.gauges.items()):
                lines.append(f"    {name:<40} {g.value:g} / {g.max:g}")
        if self.histograms:
            lines.append("  histograms (count / mean / min / max)")
            for name, h in sorted(self.histograms.items()):
                lines.append(
                    f"    {name:<40} {h.count} / {h.mean:g} / "
                    f"{h.min:g} / {h.max:g}"
                )
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)


#: The process-wide registry ``--metrics`` enables.
GLOBAL = MetricsRegistry()

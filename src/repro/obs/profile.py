"""Conflict hotspot profiler: per-site attribution of conflict stalls.

The aggregate counters of :mod:`repro.sim` answer *how many* conflicts a
program suffers; this layer answers *where the cycles go*.  A **site** is
the full static coordinate of one hazard source::

    (function, loop-nest path, block, instruction index, opcode, detail)

where the loop-nest path is the chain of enclosing loop headers (outer to
inner) and *detail* pins the hazard down to the hardware resource — the
conflicting bank plus the register pair that collides on it
(``bank1($fp1,$fp9)``) or the misaligned subgroup set (``align(sg0|sg2)``).
An empty detail marks a pure execution-heat record (the value
interpreter counts executed instances without decoding banks).

Producers (all guarded on ``PROFILE.enabled``, zero-cost while off):

* :class:`~repro.sim.dsa.DsaMachine` attributes every conflict and
  alignment *stall cycle* of the cycle model, frequency-weighted, so the
  per-site cycle total always reconciles with the aggregate
  ``conflict_penalty_cycles + alignment_penalty_cycles``;
* :func:`~repro.sim.dynamic.estimate_dynamic_conflicts` and
  :class:`~repro.sim.dynamic.DynamicSimulator` attribute expected /
  interpreted conflict *instances* (one stall cycle each);
* :class:`~repro.sim.exec.ValueInterpreter` attributes executed
  instances (execution heat, no bank decode).

Like the tracer/metrics/audit layers, the profiler snapshots to plain
picklable data and merges commutatively, so the parallel experiment
harness folds worker profiles into totals identical to a serial run.

Consumers: :meth:`ConflictProfiler.render` (top-N hotspot table),
:meth:`ConflictProfiler.folded_stacks` (flamegraph-compatible collapsed
stacks keyed by loop nest — feed to ``flamegraph.pl`` or speedscope),
:meth:`ConflictProfiler.annotate` (IR listing with per-instruction
stall annotations via :mod:`repro.ir.printer`), and
:meth:`ConflictProfiler.to_json` behind the CLI's ``--profile out.json``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

__all__ = ["GLOBAL", "ConflictProfiler", "SiteKey", "SiteStats", "loop_paths"]

#: Site coordinate: (function, loop path, block, instr index, opcode, detail).
SiteKey = tuple  # tuple[str, tuple[str, ...], str, int, str, str]


@dataclass
class SiteStats:
    """What one site cost.

    Attributes:
        conflicts: Hazard events attributed here (frequency-weighted
            expected instances, or interpreted instances).
        cycles: Stall cycles attributed here (each serialized extra bank
            access and each misalignment re-route costs one).
        executions: Executed instances of the instruction itself
            (execution heat; recorded by the interpreters).
    """

    conflicts: float = 0.0
    cycles: float = 0.0
    executions: float = 0.0

    def add(self, conflicts: float = 0.0, cycles: float = 0.0,
            executions: float = 0.0) -> None:
        self.conflicts += conflicts
        self.cycles += cycles
        self.executions += executions


def loop_paths(function) -> dict[str, tuple[str, ...]]:
    """Block label -> enclosing loop headers, outermost first.

    One :class:`~repro.ir.loops.LoopInfo` build per call; producers call
    this once per profiled function, only while the profiler is enabled.
    """
    from ..ir.loops import LoopInfo

    info = LoopInfo.build(function)
    paths: dict[str, tuple[str, ...]] = {}
    for block in function.blocks:
        chain = info.enclosing_loops(block.label)  # innermost first
        paths[block.label] = tuple(loop.header for loop in reversed(chain))
    return paths


class ConflictProfiler:
    """Accumulates per-site hazard attribution; disabled by default.

    All recording methods early-return while ``enabled`` is False, so
    instrumented code needs no guard for the *recording* itself — guard
    only the site-key construction when it is more than trivial.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self.sites: dict[SiteKey, SiteStats] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, on: bool = True) -> None:
        self.enabled = on

    def reset(self) -> None:
        with self._lock:
            self.sites.clear()

    def __len__(self) -> int:
        return len(self.sites)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, key: SiteKey, conflicts: float = 0.0,
               cycles: float = 0.0, executions: float = 0.0) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.sites.setdefault(key, SiteStats()).add(
                conflicts, cycles, executions
            )

    def record_many(self, updates) -> None:
        """Fold an iterable of ``(key, conflicts, cycles, executions)``
        under one lock acquisition — the interpreters batch per-run local
        accumulations through this."""
        if not self.enabled:
            return
        with self._lock:
            for key, conflicts, cycles, executions in updates:
                self.sites.setdefault(key, SiteStats()).add(
                    conflicts, cycles, executions
                )

    # ------------------------------------------------------------------
    # Pool-safe aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> list:
        """Picklable copy: ``[key, conflicts, cycles, executions]`` rows."""
        with self._lock:
            return [
                [list(key), s.conflicts, s.cycles, s.executions]
                for key, s in self.sites.items()
            ]

    def merge(self, snapshot: list | None) -> None:
        """Fold a worker :meth:`snapshot` in; addition is commutative, so
        parallel harness runs aggregate to the same totals as serial."""
        if not snapshot:
            return
        with self._lock:
            for raw_key, conflicts, cycles, executions in snapshot:
                func, loops, block, index, opcode, detail = raw_key
                key = (func, tuple(loops), block, index, opcode, detail)
                self.sites.setdefault(key, SiteStats()).add(
                    conflicts, cycles, executions
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total_cycles(self) -> float:
        with self._lock:
            return sum(s.cycles for s in self.sites.values())

    def total_conflicts(self) -> float:
        with self._lock:
            return sum(s.conflicts for s in self.sites.values())

    def top(self, n: int = 10, by: str = "cycles") -> list[tuple[SiteKey, SiteStats]]:
        """The *n* costliest sites, deterministically ordered (value
        descending, then site key)."""
        with self._lock:
            items = list(self.sites.items())
        items.sort(key=lambda kv: (-getattr(kv[1], by), kv[0]))
        return items[:n]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _site_label(key: SiteKey) -> str:
        func, loops, block, index, opcode, detail = key
        nest = "/".join(loops) if loops else "-"
        where = f"{func}:{block}#{index}"
        label = f"{where} {opcode}"
        if detail:
            label += f" {detail}"
        return f"{label}  [{nest}]"

    def render(self, n: int = 20) -> str:
        """Human-readable top-N hotspot table (for ``--profile -``)."""
        total = self.total_cycles()
        lines = [
            "conflict hotspots "
            f"({len(self.sites)} sites, {total:g} attributed stall cycles)",
            f"  {'cycles':>10}  {'share':>6}  {'events':>8}  site",
        ]
        for key, stats in self.top(n):
            share = stats.cycles / total if total else 0.0
            lines.append(
                f"  {stats.cycles:10g}  {share:6.1%}  {stats.conflicts:8g}  "
                f"{self._site_label(key)}"
            )
        if len(self.sites) > n:
            lines.append(f"  ... {len(self.sites) - n} cooler sites elided")
        if not self.sites:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)

    def folded_stacks(self, by: str = "cycles") -> str:
        """Flamegraph-compatible collapsed stacks, keyed by loop nest.

        One line per site: ``function;loop;...;block;opcode#i[detail]
        <value>`` — pipe into ``flamegraph.pl`` or load in speedscope.
        Values are rounded to integers (the folded format is integral);
        zero-valued sites are dropped.
        """
        lines = []
        with self._lock:
            items = sorted(self.sites.items())
        for key, stats in items:
            value = round(getattr(stats, by))
            if value <= 0:
                continue
            func, loops, block, index, opcode, detail = key
            frames = [func, *loops, block,
                      f"{opcode}#{index}" + (f"[{detail}]" if detail else "")]
            lines.append(f"{';'.join(frames)} {value}")
        return "\n".join(lines)

    def annotate(self, function) -> str:
        """IR listing of *function* with per-instruction stall annotations.

        Sites are matched by (block, instruction index); several details
        on one instruction merge into one trailing comment.
        """
        from ..ir.printer import print_function

        per_instr: dict[tuple[str, int], list[tuple[SiteKey, SiteStats]]] = {}
        with self._lock:
            for key, stats in self.sites.items():
                func, __, block, index, __, __ = key
                if func != function.name:
                    continue
                per_instr.setdefault((block, index), []).append((key, stats))

        annotations: dict[tuple[str, int], str] = {}
        for loc, entries in per_instr.items():
            entries.sort(key=lambda kv: (-kv[1].cycles, kv[0]))
            cycles = sum(s.cycles for __, s in entries)
            executions = max(s.executions for __, s in entries)
            details = [key[5] for key, __ in entries if key[5]]
            parts = []
            if cycles:
                parts.append(f"{cycles:g} stall cycles")
            if details:
                parts.append(", ".join(details))
            if executions:
                parts.append(f"{executions:g} exec")
            if parts:
                annotations[loc] = "; ".join(parts)
        return print_function(function, annotations=annotations)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """The ``--profile out.json`` document (schema-versioned)."""
        with self._lock:
            items = sorted(self.sites.items())
        return {
            "schema": 1,
            "total_cycles": sum(s.cycles for __, s in items),
            "total_conflicts": sum(s.conflicts for __, s in items),
            "sites": [
                {
                    "function": key[0],
                    "loops": list(key[1]),
                    "block": key[2],
                    "instr": key[3],
                    "opcode": key[4],
                    "detail": key[5],
                    "conflicts": stats.conflicts,
                    "cycles": stats.cycles,
                    "executions": stats.executions,
                }
                for key, stats in items
            ],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)


#: The process-wide profiler ``--profile`` enables.
GLOBAL = ConflictProfiler()

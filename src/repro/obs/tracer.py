"""Span-based tracing for the Fig. 4 pipeline and its harness.

A *span* is one named, timed interval of work — a pipeline phase, an
allocator stage, an analysis computation, a whole program sweep.  Spans
nest: the tracer keeps a per-thread stack of open spans, so a span opened
while another is open records it as its parent, and the completed log
reconstructs the exact call tree of a run (:meth:`Tracer.span_tree`).

The process-wide :data:`GLOBAL` tracer is **disabled by default** and the
disabled path is allocation-free: :meth:`Tracer.span` returns one shared
no-op context manager, so instrumented code costs a single attribute
check per span site and outputs stay bit-identical.

Export is Chrome-trace JSON (:meth:`Tracer.to_chrome_trace`): load the
file in ``chrome://tracing`` or https://ui.perfetto.dev to see the
pipeline on a timeline.  Worker processes of the parallel harness record
into their own tracer, :meth:`snapshot` the spans (plain picklable
dicts), and the parent :meth:`merge`\\ s each snapshot onto its own
*track* — tracks are assigned in merge order, which the harness keeps at
suite order, so the merged span tree is deterministic and identical in
structure to a serial run.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

__all__ = ["GLOBAL", "Span", "Tracer"]


@dataclass(slots=True)
class Span:
    """One completed, timed interval of work.

    Attributes:
        sid: Span id, unique within a tracer, assigned in *open* order.
        parent: sid of the enclosing span, or None at top level.
        tid: Logical track (serial runs use track 0; each merged worker
            snapshot gets its own track).
        name: Display name (pass name, function name, program name, ...).
        category: Coarse grouping for trace viewers ("pass", "analysis",
            "program", "function", "measure", ...).
        start: Seconds since the tracer epoch.
        end: Seconds since the tracer epoch.
        args: Extra key/values shown by trace viewers on click.
    """

    sid: int
    parent: int | None
    tid: int
    name: str
    category: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        """Plain-dict form (picklable / JSON-ready)."""
        return {
            "sid": self.sid,
            "parent": self.parent,
            "tid": self.tid,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "args": dict(self.args),
        }


class _NullSpan:
    """The shared no-op context manager the disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **args) -> None:
        """Discard annotations (mirrors :meth:`_LiveSpan.note`)."""


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; completes (records itself) when the ``with`` exits.

    Completed live spans are stored as-is (with ``_start``/``_end`` still
    on the tracer's raw clock) and only converted to :class:`Span` when
    read — recording stays one allocation lighter per span, which keeps
    GC pressure off the traced hot path.
    """

    __slots__ = ("_tracer", "sid", "parent", "tid", "name", "category",
                 "args", "_start", "_end")

    def __init__(self, tracer: "Tracer", sid: int, parent: int | None,
                 name: str, category: str, args: dict):
        self._tracer = tracer
        self.sid = sid
        self.parent = parent
        self.tid = 0
        self.name = name
        self.category = category
        self.args = args
        self._start = 0.0
        self._end = 0.0

    def to_span(self, epoch: float) -> Span:
        return Span(
            sid=self.sid,
            parent=self.parent,
            tid=self.tid,
            name=self.name,
            category=self.category,
            start=self._start - epoch,
            end=self._end - epoch,
            args=self.args,
        )

    def note(self, **args) -> None:
        """Attach key/values to the span (visible in the trace viewer)."""
        self.args.update(args)

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._complete(self, end)
        return False


class Tracer:
    """Collects nested spans; disabled (and overhead-free) by default."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._spans: list[Span] = []
        self._next_sid = 0
        self._next_tid = 0
        self._epoch = time.perf_counter()
        #: Optional display names per track, shown as thread names in
        #: Chrome trace viewers (e.g. the program a worker ran).
        self.track_names: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, on: bool = True) -> None:
        self.enabled = on

    def reset(self) -> None:
        """Drop all spans and restart ids, tracks, and the epoch."""
        with self._lock:
            self._spans.clear()
            self._next_sid = 0
            self._next_tid = 0
            self._epoch = time.perf_counter()
            self.track_names.clear()
            self._tls = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "phase", **args):
        """Open a span; use as ``with TRACER.span("coalescing"): ...``.

        When the tracer is disabled this returns a shared no-op context
        manager without allocating, so call sites need no guard.
        """
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack()
        parent = stack[-1].sid if stack else None
        live = _LiveSpan(self, self._alloc_sid(), parent, name, category, args)
        stack.append(live)
        return live

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    #: Span-id block size reserved per thread (amortizes the id lock).
    _SID_BLOCK = 64

    def _alloc_sid(self) -> int:
        """Next span id, from a per-thread block of the shared counter.

        Blocks keep ids unique and monotonically increasing within a
        thread (what ordering-sensitive consumers rely on) while paying
        the lock once per :data:`_SID_BLOCK` spans instead of per span.
        ``_next_sid`` always sits above every id handed out, so merge
        rebasing stays collision-free even with blocks outstanding.
        """
        tls = self._tls
        sid = getattr(tls, "sid_next", 0)
        if sid >= getattr(tls, "sid_end", 0):
            with self._lock:
                sid = self._next_sid
                self._next_sid += self._SID_BLOCK
            tls.sid_end = sid + self._SID_BLOCK
        tls.sid_next = sid + 1
        return sid

    def _thread_tid(self) -> int:
        tid = getattr(self._tls, "tid", None)
        if tid is None:
            with self._lock:
                tid = self._tls.tid = self._next_tid
                self._next_tid += 1
        return tid

    def _complete(self, live: _LiveSpan, end: float) -> None:
        stack = self._stack()
        # Tolerate out-of-order exits (generators, re-raised errors): pop
        # the span wherever it sits instead of corrupting the stack.
        if stack and stack[-1] is live:
            stack.pop()
        elif live in stack:
            stack.remove(live)
        live.tid = self._thread_tid()
        live._end = end
        with self._lock:
            self._spans.append(live)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """Completed spans, in completion order."""
        with self._lock:
            epoch = self._epoch
            return [
                s if isinstance(s, Span) else s.to_span(epoch)
                for s in self._spans
            ]

    def __len__(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    # Pool-safe aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """Picklable copy of all completed spans (for worker shipping)."""
        return [span.as_dict() for span in self.spans]

    def merge(self, snapshot: list[dict] | None, track: str | None = None) -> None:
        """Fold a worker :meth:`snapshot` into this tracer.

        The snapshot's spans land on a fresh track whose id is assigned in
        merge order; sids are rebased past this tracer's counter, and
        parent links are remapped with them.  Merging the same snapshots
        in the same order therefore always produces the same span tree —
        the harness merges in suite order, making parallel traces
        structurally identical to serial ones.
        """
        if not snapshot:
            return
        with self._lock:
            base = self._next_sid
            tid = self._next_tid
            self._next_tid += 1
            self._next_sid += max(s["sid"] for s in snapshot) + 1
            if track:
                self.track_names[tid] = track
            for s in snapshot:
                self._spans.append(
                    Span(
                        sid=s["sid"] + base,
                        parent=None if s["parent"] is None else s["parent"] + base,
                        tid=tid,
                        name=s["name"],
                        category=s["category"],
                        start=s["start"],
                        end=s["end"],
                        args=dict(s["args"]),
                    )
                )

    # ------------------------------------------------------------------
    # Reconstruction & export
    # ------------------------------------------------------------------
    def span_tree(self) -> list[dict]:
        """The nested call tree: ``{"name", "category", "children"}``.

        Top-level spans are ordered by (track, open order), children by
        open order — both deterministic, and independent of timestamps,
        so a parallel run's tree equals the serial run's.
        """
        spans = sorted(self.spans, key=lambda s: (s.tid, s.sid))
        nodes = {
            s.sid: {"name": s.name, "category": s.category, "children": []}
            for s in spans
        }
        roots: list[dict] = []
        for s in spans:
            if s.parent is not None and s.parent in nodes:
                nodes[s.parent]["children"].append(nodes[s.sid])
            else:
                roots.append(nodes[s.sid])
        return roots

    def to_chrome_trace(self) -> dict:
        """The ``chrome://tracing`` / Perfetto JSON object form.

        One complete-duration (``"ph": "X"``) event per span, timestamps
        in microseconds, plus metadata events naming the process and any
        named tracks.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        for tid, name in sorted(self.track_names.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        for s in sorted(self.spans, key=lambda s: (s.tid, s.sid)):
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": round(s.start * 1e6, 3),
                    "dur": round(max(0.0, s.duration) * 1e6, 3),
                    "pid": 0,
                    "tid": s.tid,
                    "args": dict(s.args),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Serialize :meth:`to_chrome_trace` to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)


#: The process-wide tracer ``--trace`` enables.
GLOBAL = Tracer()

"""Allocation decision audit log — ``--explain vreg``.

Algorithm 1 (the PresCount bank assigner) makes one decision per RCG
node: which bank the virtual register lands in, and *why* — was a
conflict-free color available (``PresCountPrioritize`` on the available
set), did the register-pressure threshold force pressure minimization
over the full color set (``THRES`` fallback), or did the node fall
through to ``NeighbourCostPrioritize`` (cheapest residual conflict)?
When enabled, the assigner records every decision here with the full
candidate ranking, so a paper-vs-code discrepancy is diagnosable from the
run's output alone — no debugger, no re-run.

Free-register balancing (§III-B, end) logs through the same channel with
``step="free-balance"``, and the greedy allocator's spill decisions land
as ``step="spill"`` so a vreg's whole life is explainable.

Like the tracer and metrics, the process-wide :data:`GLOBAL` log is
disabled by default, snapshots are picklable dicts, and merging worker
snapshots in suite order keeps the merged log deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["GLOBAL", "AuditLog", "AuditRecord"]

#: The three Algorithm 1 outcomes an RCG-node decision can take.
PATH_CONFLICT_FREE = "conflict-free"
PATH_THRESHOLD_FALLBACK = "threshold-fallback"
PATH_NEIGHBOUR_COST = "neighbour-cost"


@dataclass
class AuditRecord:
    """One recorded decision about one virtual register.

    Attributes:
        function: Name of the function being processed.
        vreg: Printed form of the register (e.g. ``"v5"``).
        step: Decision site — ``"rcg-color"`` (Algorithm 1 work list),
            ``"free-balance"`` (§III-B free-register balancing), or
            ``"spill"`` (greedy allocator gave up on the interval).
        path: Which prioritization ran (see module constants); empty for
            non-coloring steps.
        chosen: The winning bank (or ``-1`` when not applicable).
        detail: Step-specific facts: node cost/degree, neighbor banks,
            the ranked candidate list with per-bank keys, THRES vs
            pressure, spill weights, ...
    """

    function: str
    vreg: str
    step: str
    path: str = ""
    chosen: int = -1
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "vreg": self.vreg,
            "step": self.step,
            "path": self.path,
            "chosen": self.chosen,
            "detail": dict(self.detail),
        }

    def render(self) -> str:
        lines = [f"{self.vreg} [{self.function}] {self.step}"
                 + (f" via {self.path}" if self.path else "")
                 + (f" -> bank {self.chosen}" if self.chosen >= 0 else "")]
        for key, value in self.detail.items():
            if key == "candidates":
                lines.append("    candidates (best first):")
                for cand in value:
                    keys = ", ".join(
                        f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                        for k, v in cand.items()
                        if k != "bank"
                    )
                    lines.append(f"      bank {cand['bank']}: {keys}")
            else:
                lines.append(f"    {key} = {value}")
        return "\n".join(lines)


@dataclass
class AuditLog:
    """Ordered log of :class:`AuditRecord`; disabled (no-op) by default."""

    enabled: bool = False
    records: list[AuditRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def enable(self, on: bool = True) -> None:
        self.enabled = on

    def reset(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    def record(
        self,
        function: str,
        vreg: str,
        step: str,
        path: str = "",
        chosen: int = -1,
        **detail,
    ) -> None:
        """Append one decision (no-op while disabled)."""
        if not self.enabled:
            return
        self.records.append(
            AuditRecord(function, vreg, step, path, chosen, detail)
        )

    # ------------------------------------------------------------------
    # Pool-safe aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        return [r.as_dict() for r in self.records]

    def merge(self, snapshot: list[dict] | None) -> None:
        if not snapshot:
            return
        for r in snapshot:
            self.records.append(
                AuditRecord(
                    r["function"], r["vreg"], r["step"], r["path"],
                    r["chosen"], dict(r["detail"]),
                )
            )

    # ------------------------------------------------------------------
    # Query & export
    # ------------------------------------------------------------------
    def for_vreg(self, vreg: str, function: str | None = None) -> list[AuditRecord]:
        """All records about *vreg* (e.g. ``"v5"``), oldest first."""
        return [
            r
            for r in self.records
            if r.vreg == vreg and (function is None or r.function == function)
        ]

    def explain(self, vreg: str, function: str | None = None) -> str:
        """Human-readable decision history of one virtual register."""
        records = self.for_vreg(vreg, function)
        if not records:
            scope = f" in function {function!r}" if function else ""
            return f"no recorded decisions for {vreg!r}{scope}"
        return "\n".join(r.render() for r in records)

    def to_json(self) -> list[dict]:
        return self.snapshot()

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=1)

    def __len__(self) -> int:
        return len(self.records)


#: The process-wide audit log ``--explain`` enables.
GLOBAL = AuditLog()

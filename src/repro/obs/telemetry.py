"""Fleet-wide telemetry: tracing, live metrics, events, and SLOs.

The PR-2 observability layer (tracer / metrics / audit / profiler) is
single-process and dump-at-exit.  This module adds the fleet layer the
sharded service needs:

* :class:`TraceContext` — a request-scoped trace id + parent span id +
  baggage, encoded into the ``X-Repro-Trace`` HTTP header so one trace
  survives the frontend → shard → worker hops.
* :data:`TELEMETRY` (:class:`TraceRecorder`) — per-process span buffers
  keyed by trace id, flushed to the frontend via ``GET
  /v1/trace/<trace_id>`` and merged into one Chrome trace
  (:func:`chrome_trace`).
* :class:`StreamingHistogram` / :class:`RingSeries` — O(1)-per-sample
  aggregates cheap enough for the request hot path; the histogram keeps
  power-of-two buckets (``math.frexp``) instead of scanning bound
  arrays.
* :func:`render_prometheus` / :func:`parse_prometheus` — text
  exposition for ``GET /v1/metrics`` plus a parser so tests and CI can
  round-trip the output without external dependencies.
* :data:`EVENTS` (:class:`EventLog`) — a JSONL log, one line per served
  request (trace id, shard, tiers, stage timings, cache disposition).
* :class:`SLOTracker` — availability / p99 latency / goodput targets
  with error-budget burn, surfaced in ``/v1/stats`` and ``repro top``.

Everything here follows the PR-2 protocol: disabled by default, no
effect on results (trace context never enters request bodies or cache
keys), and stdlib-only.  Span ids are random 48-bit values so spans
recorded in different processes can reference each other without any
remapping when merged.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "EVENTS",
    "EventLog",
    "RingSeries",
    "SLOTracker",
    "StreamingHistogram",
    "TELEMETRY",
    "TRACE_HEADER",
    "TraceContext",
    "TraceRecorder",
    "chrome_trace",
    "orphan_spans",
    "parse_prometheus",
    "prometheus_name",
    "render_prometheus",
]

TRACE_HEADER = "X-Repro-Trace"

_MAX_TRACES = 512
_MAX_SPANS_PER_TRACE = 2048
_BAGGAGE_VALUE_RE = re.compile(r"[^A-Za-z0-9_.:@/+-]")


def _new_id(bits: int = 48) -> int:
    """A random, effectively-unique span id (collision odds ~2^-48)."""

    return int.from_bytes(os.urandom(bits // 8), "big") or 1


def new_span_id() -> int:
    """A fresh globally-unique span id, for spans recorded post-hoc
    (the service allocates a job's span id at submit so pool workers
    can parent their spans on it before the job span is written)."""

    return _new_id()


def _clean_baggage(items: dict) -> tuple:
    pairs = []
    for key, value in sorted(items.items()):
        if value is None:
            continue
        text = _BAGGAGE_VALUE_RE.sub("_", str(value))[:48]
        pairs.append((str(key), text))
    return tuple(pairs)


@dataclass(frozen=True)
class TraceContext:
    """Immutable trace coordinates carried alongside (never *in*) a request.

    ``trace_id`` names the whole request tree; ``span_id`` is the id of
    the span that should parent whatever the receiving side records
    (``0`` = root).  ``baggage`` is a small, sanitized key/value tuple
    (method, deadline, cache-key prefix) for labeling downstream spans.
    The wire form is the ``X-Repro-Trace`` header::

        <trace_id>;span=<span_id>;key=value;...
    """

    trace_id: str
    span_id: int = 0
    baggage: tuple = ()

    @classmethod
    def new(cls, **baggage) -> "TraceContext":
        return cls(f"{_new_id(64):016x}", 0, _clean_baggage(baggage))

    def child(self, span_id: int) -> "TraceContext":
        return TraceContext(self.trace_id, span_id, self.baggage)

    def bag(self) -> dict:
        return dict(self.baggage)

    def header(self) -> str:
        parts = [self.trace_id, f"span={self.span_id}"]
        parts.extend(f"{key}={value}" for key, value in self.baggage)
        return ";".join(parts)

    @classmethod
    def parse(cls, value) -> "TraceContext | None":
        """Decode a header value; ``None`` on anything malformed."""

        if not value or not isinstance(value, str) or len(value) > 1024:
            return None
        head, _, rest = value.partition(";")
        trace_id = head.strip()
        if not re.fullmatch(r"[0-9a-f]{8,32}", trace_id):
            return None
        span_id = 0
        baggage = []
        for part in rest.split(";"):
            key, sep, item = part.partition("=")
            if not sep:
                continue
            key = key.strip()
            if key == "span":
                try:
                    span_id = int(item)
                except ValueError:
                    return None
            elif key:
                baggage.append((key, item))
        return cls(trace_id, span_id, tuple(baggage))


class _ActiveSpan:
    """Yielded by :meth:`TraceRecorder.span`; ``ctx`` is the child
    context to propagate downstream (header, queue payload, ...)."""

    __slots__ = ("ctx", "sid", "args")

    def __init__(self, ctx, sid, args):
        self.ctx = ctx
        self.sid = sid
        self.args = args

    def note(self, **kwargs) -> None:
        if self.args is not None:
            self.args.update(kwargs)


class TraceRecorder:
    """Per-process span buffers keyed by trace id.

    Unlike the PR-2 :class:`~repro.obs.tracer.Tracer` (one flat list,
    per-process monotonic epoch, sequential span ids), this recorder is
    built to merge across processes: wall-clock timestamps, globally
    unique span ids, and per-trace retrieval (:meth:`spans_for`) so the
    frontend can flush shard buffers through ``/v1/trace/<trace_id>``.
    Buffers are bounded (oldest trace evicted past ``_MAX_TRACES``).
    """

    def __init__(self, process: str = "main"):
        self.enabled = False
        self.process = process
        self._lock = threading.Lock()
        self._traces: "dict[str, list]" = {}
        self._tls = threading.local()
        self.dropped = 0

    # -- lifecycle ----------------------------------------------------

    def enable(self, process: str | None = None) -> None:
        if process:
            self.process = process
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._traces.clear()
            self.dropped = 0

    # -- thread-local context ----------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current(self) -> TraceContext | None:
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def activate(self, ctx):
        """Make *ctx* the thread's current context without recording a
        span — lets deep call sites (fault injector, cache probes)
        attach events to the request that reached them."""

        if ctx is None:
            yield
            return
        stack = self._stack()
        stack.append(ctx)
        try:
            yield
        finally:
            stack.pop()

    # -- recording ----------------------------------------------------

    @contextmanager
    def span(self, ctx, name: str, *, category: str = "request", **args):
        """Record a timed span under *ctx*; yields an :class:`_ActiveSpan`
        whose ``.ctx`` is the child context to propagate downstream.
        No-op (propagating *ctx* unchanged) when disabled or untraced.
        """

        if not self.enabled or ctx is None:
            yield _ActiveSpan(ctx, ctx.span_id if ctx else 0, None)
            return
        sid = _new_id()
        active = _ActiveSpan(ctx.child(sid), sid, dict(args))
        stack = self._stack()
        stack.append(active.ctx)
        start = time.time()
        try:
            yield active
        except BaseException as exc:
            active.args["error"] = f"{type(exc).__name__}: {exc}"[:200]
            raise
        finally:
            end = time.time()
            stack.pop()
            self.record(
                {
                    "trace": ctx.trace_id,
                    "sid": sid,
                    "parent": ctx.span_id,
                    "name": name,
                    "cat": category,
                    "proc": self.process,
                    "ts": start,
                    "dur": end - start,
                    "args": active.args,
                }
            )

    def event_for(self, ctx, name: str, **args) -> None:
        """An instantaneous span (retry, breaker trip, fault firing,
        degradation) attached under *ctx*."""

        if not self.enabled or ctx is None:
            return
        self.record(
            {
                "trace": ctx.trace_id,
                "sid": _new_id(),
                "parent": ctx.span_id,
                "name": name,
                "cat": "event",
                "proc": self.process,
                "ts": time.time(),
                "dur": 0.0,
                "args": dict(args),
            }
        )

    def event(self, name: str, **args) -> None:
        """:meth:`event_for` against the thread's current context."""

        if self.enabled:
            self.event_for(self.current(), name, **args)

    def record(self, span: dict) -> None:
        with self._lock:
            bucket = self._traces.get(span["trace"])
            if bucket is None:
                while len(self._traces) >= _MAX_TRACES:
                    self._traces.pop(next(iter(self._traces)))
                bucket = self._traces[span["trace"]] = []
            if len(bucket) >= _MAX_SPANS_PER_TRACE:
                self.dropped += 1
                return
            bucket.append(span)

    def record_raw(self, spans) -> None:
        """Fold spans produced elsewhere (pool workers return them in
        their result payloads) into this process's buffers."""

        if not self.enabled:
            return
        for span in spans or ():
            if isinstance(span, dict) and "trace" in span and "sid" in span:
                span = dict(span)
                if not span.get("proc"):
                    span["proc"] = self.process
                self.record(span)

    # -- retrieval ----------------------------------------------------

    def spans_for(self, trace_id: str) -> list:
        with self._lock:
            return [dict(s) for s in self._traces.get(trace_id, ())]

    def trace_ids(self) -> list:
        with self._lock:
            return list(self._traces)

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "process": self.process,
                "traces": len(self._traces),
                "spans": sum(len(v) for v in self._traces.values()),
                "dropped": self.dropped,
            }


def orphan_spans(spans) -> list:
    """Spans whose parent id resolves to no span in *spans* and is not
    the root (``0``) — a coherent merged trace has none."""

    sids = {span["sid"] for span in spans}
    return [s for s in spans if s["parent"] and s["parent"] not in sids]


# ---------------------------------------------------------------------------
# Streaming aggregates


_UNDERFLOW_EXP = -1075  # everything <= 0 lands here (frexp needs v > 0)


class StreamingHistogram:
    """Count/sum/min/max plus power-of-two buckets in O(1) per sample.

    ``math.frexp(v)[1]`` is the bucket key — no bound-array scan, no
    allocation on the hot path — which is what lets per-stage latency
    recording stay inside the service's ≤5 % overhead budget.  Bucket
    upper bounds are ``2.0**exp``, rendered cumulatively for Prometheus.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: "dict[int, int]" = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exp = math.frexp(value)[1] if value > 0.0 else _UNDERFLOW_EXP
        buckets = self.buckets
        buckets[exp] = buckets.get(exp, 0) + 1

    def merge(self, other: "StreamingHistogram | dict") -> None:
        if isinstance(other, dict):
            count = other.get("count", 0)
            if not count:
                return
            self.count += count
            self.total += other.get("total", 0.0)
            self.min = min(self.min, other.get("min", math.inf))
            self.max = max(self.max, other.get("max", -math.inf))
            pairs = (other.get("buckets") or {}).items()
        else:
            if not other.count:
                return
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            pairs = other.buckets.items()
        buckets = self.buckets
        for exp, count in pairs:
            exp = int(exp)
            buckets[exp] = buckets.get(exp, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the *q* quantile from the buckets."""

        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for exp in sorted(self.buckets):
            seen += self.buckets[exp]
            if seen >= rank:
                bound = 0.0 if exp == _UNDERFLOW_EXP else 2.0 ** exp
                return min(bound, self.max)
        return self.max

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {str(exp): n for exp, n in sorted(self.buckets.items())},
        }


class RingSeries:
    """A ring of per-interval buckets for windowed rates.

    Fixed memory, O(1) :meth:`add`; stale slots are lazily zeroed when
    the ring wraps, so an idle series costs nothing.  Not internally
    locked — owners (:class:`SLOTracker`) serialize access.
    """

    __slots__ = ("slots", "width_s", "_values", "_stamps")

    def __init__(self, slots: int = 120, width_s: float = 1.0):
        self.slots = slots
        self.width_s = width_s
        self._values = [0.0] * slots
        self._stamps = [-1] * slots

    def _slot(self, now: float) -> int:
        stamp = int(now / self.width_s)
        index = stamp % self.slots
        if self._stamps[index] != stamp:
            self._stamps[index] = stamp
            self._values[index] = 0.0
        return index

    def add(self, value: float = 1.0, now: float | None = None) -> None:
        now = time.time() if now is None else now
        self._values[self._slot(now)] += value

    def total(self, window_s: float = 60.0, now: float | None = None) -> float:
        now = time.time() if now is None else now
        oldest = int((now - window_s) / self.width_s)
        newest = int(now / self.width_s)
        return sum(
            value
            for value, stamp in zip(self._values, self._stamps)
            if oldest < stamp <= newest
        )

    def rate(self, window_s: float = 60.0, now: float | None = None) -> float:
        return self.total(window_s, now) / window_s if window_s > 0 else 0.0

    def series(self, window_s: float = 60.0, now: float | None = None) -> list:
        now = time.time() if now is None else now
        oldest = int((now - window_s) / self.width_s)
        newest = int(now / self.width_s)
        points = [
            (stamp * self.width_s, value)
            for value, stamp in zip(self._values, self._stamps)
            if oldest < stamp <= newest
        ]
        return sorted(points)


# ---------------------------------------------------------------------------
# Prometheus text exposition


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)$"
)
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def prometheus_name(name: str) -> str:
    """``service.queue.depth`` → ``repro_service_queue_depth``."""

    flat = _PROM_BAD.sub("_", name)
    return flat if flat.startswith("repro_") else f"repro_{flat}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{str(val)}"' for key, val in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(samples) -> str:
    """Render ``[(labels, sample), ...]`` as Prometheus text exposition.

    Each *sample* is the ``{"counters": .., "gauges": .., "histograms":
    ..}`` shape produced by ``AllocationService.metrics_sample()`` /
    ``MetricsRegistry.snapshot()``; *labels* (e.g. ``{"shard": "s0"}``)
    distinguish fleet members while keeping one family per metric name.
    """

    counters: "dict[str, list]" = {}
    gauges: "dict[str, list]" = {}
    histograms: "dict[str, list]" = {}
    for labels, sample in samples:
        labels = labels or {}
        for name, value in (sample.get("counters") or {}).items():
            counters.setdefault(name, []).append((labels, value))
        for name, value in (sample.get("gauges") or {}).items():
            if isinstance(value, dict):
                value = value.get("value", 0.0)
            gauges.setdefault(name, []).append((labels, value))
        for name, summary in (sample.get("histograms") or {}).items():
            histograms.setdefault(name, []).append((labels, summary))
    lines = []
    for name in sorted(counters):
        family = prometheus_name(name)
        if not family.endswith("_total"):
            family += "_total"
        lines.append(f"# TYPE {family} counter")
        for labels, value in counters[name]:
            lines.append(f"{family}{_prom_labels(labels)} {_prom_value(value)}")
    for name in sorted(gauges):
        family = prometheus_name(name)
        lines.append(f"# TYPE {family} gauge")
        for labels, value in gauges[name]:
            lines.append(f"{family}{_prom_labels(labels)} {_prom_value(value)}")
    for name in sorted(histograms):
        family = prometheus_name(name)
        lines.append(f"# TYPE {family} histogram")
        for labels, summary in histograms[name]:
            buckets = {
                int(exp): count
                for exp, count in (summary.get("buckets") or {}).items()
            }
            seen = 0
            for exp in sorted(buckets):
                seen += buckets[exp]
                bound = "0" if exp == _UNDERFLOW_EXP else _prom_value(2.0 ** exp)
                full = dict(labels)
                full["le"] = bound
                lines.append(f"{family}_bucket{_prom_labels(full)} {seen}")
            full = dict(labels)
            full["le"] = "+Inf"
            count = summary.get("count", 0)
            lines.append(f"{family}_bucket{_prom_labels(full)} {count}")
            lines.append(
                f"{family}_sum{_prom_labels(labels)} "
                f"{_prom_value(summary.get('total', 0.0))}"
            )
            lines.append(f"{family}_count{_prom_labels(labels)} {count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse text exposition back into ``{(name, labels): value}`` where
    *labels* is a sorted tuple of pairs.  Raises :class:`ValueError` on
    any malformed sample line, so tests genuinely round-trip."""

    metrics = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _PROM_LINE.match(line)
        if not match:
            raise ValueError(f"malformed exposition line: {raw!r}")
        name, label_text, value = match.groups()
        labels = tuple(sorted(_PROM_LABEL.findall(label_text or "")))
        if value == "+Inf":
            parsed = math.inf
        elif value == "-Inf":
            parsed = -math.inf
        else:
            parsed = float(value)
        metrics[(name, labels)] = parsed
    return metrics


# ---------------------------------------------------------------------------
# Structured events


class EventLog:
    """JSONL event log: one line per served request.

    Keeps a bounded in-memory ring (``recent`` feeds ``repro top``) and
    optionally appends to a file (``repro serve --events PATH``).  Lines
    are canonical JSON (sorted keys) so downstream tooling can diff
    runs.
    """

    def __init__(self, capacity: int = 1024):
        self.enabled = False
        self.path = None
        self.emitted = 0
        self._ring = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._fh = None

    def enable(self, path: str | None = None) -> None:
        with self._lock:
            if path:
                self.path = path
                self._fh = open(path, "a", encoding="utf-8")
            self.enabled = True

    def close(self) -> None:
        with self._lock:
            self.enabled = False
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self.emitted = 0

    def emit(self, record: dict) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._ring.append(record)
            self.emitted += 1
            if self._fh is not None:
                self._fh.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
                self._fh.flush()

    def recent(self, n: int = 50) -> list:
        with self._lock:
            items = list(self._ring)
        return items[-n:]


# ---------------------------------------------------------------------------
# SLO tracking


class SLOTracker:
    """Availability / p99 latency / goodput against explicit targets.

    ``record`` is O(1) (counter bumps, a bounded deque append, two ring
    buckets); ``snapshot`` does the percentile math, so the hot path
    never sorts.  *Error-budget burn* is the fraction of the allowed
    failures (``(1 - availability_target) * requests``) already spent.
    """

    def __init__(
        self,
        *,
        availability_target: float = 0.999,
        p99_ms_target: float = 500.0,
        goodput_target: float = 0.99,
        window: int = 2048,
    ):
        self.availability_target = availability_target
        self.p99_ms_target = p99_ms_target
        self.goodput_target = goodput_target
        self.requests = 0
        self.ok = 0
        self.good = 0
        self._latencies = deque(maxlen=window)
        self.request_rate = RingSeries()
        self.error_rate = RingSeries()
        self._lock = threading.Lock()

    def record(
        self,
        *,
        ok: bool,
        latency_s: float | None = None,
        good: bool | None = None,
    ) -> None:
        good = ok if good is None else good
        with self._lock:
            self.requests += 1
            if ok:
                self.ok += 1
            if good:
                self.good += 1
            if latency_s is not None:
                self._latencies.append(latency_s)
            now = time.time()
            self.request_rate.add(1.0, now)
            if not ok:
                self.error_rate.add(1.0, now)

    def reset(self) -> None:
        with self._lock:
            self.requests = 0
            self.ok = 0
            self.good = 0
            self._latencies.clear()
            self.request_rate = RingSeries()
            self.error_rate = RingSeries()

    @staticmethod
    def _percentile(values, q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict:
        with self._lock:
            requests = self.requests
            ok = self.ok
            good = self.good
            latencies = list(self._latencies)
            rate = self.request_rate.rate(60.0)
            error_rate = self.error_rate.rate(60.0)
        availability = ok / requests if requests else 1.0
        goodput_ratio = good / requests if requests else 1.0
        allowed = (1.0 - self.availability_target) * requests
        consumed = requests - ok
        if consumed == 0:
            burn = 0.0
        elif allowed > 0:
            burn = consumed / allowed
        else:
            burn = math.inf
        p50 = self._percentile(latencies, 0.50) * 1000.0
        p99 = self._percentile(latencies, 0.99) * 1000.0
        worst = max(latencies) * 1000.0 if latencies else 0.0
        return {
            "targets": {
                "availability": self.availability_target,
                "p99_ms": self.p99_ms_target,
                "goodput": self.goodput_target,
            },
            "requests": requests,
            "availability": availability,
            "goodput_ratio": goodput_ratio,
            "error_budget": {
                "allowed": allowed,
                "consumed": consumed,
                "burn": None if burn == math.inf else burn,
                "remaining": None if burn == math.inf else max(0.0, 1.0 - burn),
            },
            "latency_ms": {"p50": p50, "p99": p99, "max": worst},
            "rate": {"requests_per_s": rate, "errors_per_s": error_rate},
            "meets": {
                "availability": availability >= self.availability_target,
                "p99": p99 <= self.p99_ms_target,
                "goodput": goodput_ratio >= self.goodput_target,
            },
        }


# ---------------------------------------------------------------------------
# Chrome-trace merge


def chrome_trace(payload: dict) -> dict:
    """Merge a ``/v1/trace/<trace_id>`` payload (``{"trace_id", "spans"}``
    with per-span ``proc`` labels) into one Chrome Trace Event document:
    one pid lane per process, timestamps rebased to the earliest span.
    """

    spans = payload.get("spans") or []
    processes = sorted({span.get("proc") or "main" for span in spans})
    pids = {proc: index + 1 for index, proc in enumerate(processes)}
    base = min((span["ts"] for span in spans), default=0.0)
    events = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": proc},
        }
        for proc, pid in pids.items()
    ]
    for span in spans:
        args = dict(span.get("args") or {})
        args["sid"] = span["sid"]
        args["parent"] = span["parent"]
        event = {
            "name": span["name"],
            "cat": span.get("cat", "span"),
            "pid": pids[span.get("proc") or "main"],
            "tid": 0,
            "ts": round((span["ts"] - base) * 1e6, 3),
            "args": args,
        }
        if span.get("cat") == "event":
            event["ph"] = "i"
            event["s"] = "p"
        else:
            event["ph"] = "X"
            event["dur"] = round(max(span.get("dur", 0.0), 0.0) * 1e6, 3)
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": payload.get("trace_id")},
    }


TELEMETRY = TraceRecorder()
EVENTS = EventLog()

if os.environ.get("REPRO_TELEMETRY"):
    TELEMETRY.enabled = True

# Shard worker processes inherit the event log path the same way —
# short appended lines from many processes interleave whole (O_APPEND).
if os.environ.get("REPRO_EVENTS"):
    EVENTS.enable(os.environ["REPRO_EVENTS"])

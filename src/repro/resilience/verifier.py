"""Independent verification of served allocation artifacts.

RL4ReAl's lesson for learned allocators applies to *served* allocators
too: an artifact must not be trusted just because the pipeline (or a
cache entry claiming to be the pipeline's output) produced it.  The
:class:`AllocationVerifier` re-checks an artifact from scratch — using
only the artifact bytes plus, when available, the request's original IR
— before the service caches or serves it:

1. **Canonical-bytes integrity** — the bytes parse as JSON and re-encode
   to exactly themselves under the canonical encoding (any smuggled
   whitespace, reordering, or trailing garbage fails here);
2. **Schema & key** — required fields present, schema version known, and
   the embedded content address equals the key the request hashed to
   (a swapped or mislabeled cache entry fails here);
3. **Structural allocation checks** — the allocated IR parses, passes
   the IR verifier, and passes :func:`repro.alloc.verify.verify_allocation`:
   no virtual registers of the allocated class survive, every physical
   register is written before it is read on every path (the structural
   form of "no register reuse across overlapping live ranges"), and
   spill slots are stored before reloaded;
4. **Bank/subgroup legality** — every physical register in the IR and
   the assignment map exists in the register file the artifact names,
   and the statistics block matches a from-scratch
   :func:`~repro.sim.static_stats.analyze_static` recomputation
   (instructions, static/bank conflicts, subgroup violations);
5. **Semantic spot-check** — with the original IR in hand, the existing
   value interpreter executes both functions and the observables must
   match (:func:`repro.sim.exec.observably_equivalent`); this is what
   catches a live value clobbered by an overlapping reuse that is
   structurally well-formed.

Modes (:data:`VERIFY_MODES`):

* ``strict`` — verify every artifact before it is cached *and* before
  every serve (cache hits included);
* ``cached-only`` — verify only artifacts read back from the on-disk
  cache (entries this process computed, verified, and kept in memory
  are trusted); the default, because disk is where corruption lives;
* ``off`` — never verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alloc.verify import verify_allocation
from ..ir.parser import parse_function
from ..ir.types import FP, PhysicalRegister, RegClass
from ..ir.verifier import VerificationError as IRVerificationError
from ..ir.verifier import verify_function
from ..sim.exec import ExecutionError, observably_equivalent
from ..sim.static_stats import analyze_static

__all__ = [
    "AllocationVerifier",
    "ArtifactVerificationError",
    "VERIFY_MODES",
    "VerificationReport",
]

#: Verifier operating modes, strictest first.
VERIFY_MODES = ("strict", "cached-only", "off")

#: Artifact fields every schema-1 artifact must carry.
REQUIRED_FIELDS = (
    "schema", "key", "function", "method", "file", "flags", "ir",
    "assignment", "stats",
)

#: Fields every spliced module artifact must carry.
MODULE_REQUIRED_FIELDS = (
    "schema", "kind", "key", "module", "method", "file", "flags",
    "functions", "stats",
)

#: Statistics the verifier recomputes and compares bit-for-bit.
RECHECKED_STATS = (
    "instructions", "conflict_relevant", "static_conflicts",
    "bank_conflicts", "subgroup_violations",
)


class ArtifactVerificationError(RuntimeError):
    """An artifact failed verification; carries the findings."""

    def __init__(self, findings: list[str]):
        self.findings = list(findings)
        super().__init__("; ".join(findings) or "artifact verification failed")


@dataclass
class VerificationReport:
    """Outcome of one verification: which checks ran, what they found."""

    checks: list[str] = field(default_factory=list)
    findings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        lines = [f"verification: {status} ({', '.join(self.checks)})"]
        lines.extend(f"  - {finding}" for finding in self.findings)
        return "\n".join(lines)


class AllocationVerifier:
    """Re-checks artifacts independently of the pipeline that made them."""

    def __init__(self, mode: str = "cached-only", *, regclass: RegClass = FP):
        if mode not in VERIFY_MODES:
            raise ValueError(
                f"unknown verify mode {mode!r}; expected one of {VERIFY_MODES}"
            )
        self.mode = mode
        self.regclass = regclass

    # ------------------------------------------------------------------
    def should_verify(self, source: str) -> bool:
        """Whether *source* (``computed`` | ``memory`` | ``disk``) gets
        verified under the configured mode."""
        if self.mode == "off":
            return False
        if self.mode == "strict":
            return True
        return source == "disk"

    # ------------------------------------------------------------------
    def verify_bytes(
        self,
        data: bytes,
        *,
        expected_key: str | None = None,
        original_ir: str | None = None,
    ) -> VerificationReport:
        """Verify serialized artifact bytes (never raises; see report)."""
        import json

        # Imported here (not at module top) to keep the service ↔
        # resilience import graph acyclic.
        from ..service.artifact import artifact_bytes

        report = VerificationReport()
        report.checks.append("canonical-bytes")
        try:
            artifact = json.loads(data)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            report.findings.append(f"artifact bytes are not valid JSON: {exc}")
            return report
        if not isinstance(artifact, dict):
            report.findings.append("artifact is not a JSON object")
            return report
        if artifact_bytes(artifact) != data:
            report.findings.append(
                "artifact bytes are not in canonical form (reordered keys, "
                "whitespace, or trailing data)"
            )
            return report
        self._verify_dict(
            artifact, report,
            expected_key=expected_key, original_ir=original_ir,
        )
        return report

    def verify_artifact(
        self,
        artifact: dict,
        *,
        expected_key: str | None = None,
        original_ir: str | None = None,
    ) -> VerificationReport:
        """Verify a parsed artifact dict (never raises; see report)."""
        report = VerificationReport()
        self._verify_dict(
            artifact, report,
            expected_key=expected_key, original_ir=original_ir,
        )
        return report

    # ------------------------------------------------------------------
    def _verify_dict(
        self,
        artifact: dict,
        report: VerificationReport,
        *,
        expected_key: str | None,
        original_ir: str | None,
    ) -> None:
        from ..service.artifact import (
            SCHEMA_VERSION,
            build_register_file,
            cache_key,
        )

        findings = report.findings

        if artifact.get("kind") == "module":
            self._verify_module(artifact, report, expected_key=expected_key)
            return

        # -- schema & key ---------------------------------------------
        report.checks.append("schema")
        missing = [k for k in REQUIRED_FIELDS if k not in artifact]
        if missing:
            findings.append(f"artifact is missing fields {missing}")
            return
        if artifact["schema"] != SCHEMA_VERSION:
            findings.append(
                f"unknown artifact schema {artifact['schema']!r} "
                f"(expected {SCHEMA_VERSION})"
            )
            return
        if expected_key is not None and artifact["key"] != expected_key:
            findings.append(
                f"artifact key {artifact['key'][:12]}… does not match the "
                f"request's content address {expected_key[:12]}… "
                "(wrong or mislabeled entry)"
            )
        if original_ir is not None:
            recomputed = cache_key(
                original_ir, artifact["file"], artifact["method"],
                artifact["flags"], machine=artifact.get("machine"),
            )
            if recomputed != artifact["key"]:
                findings.append(
                    "artifact key does not hash from the submitted IR, "
                    "file, method, flags, and machine"
                )

        # -- structural -----------------------------------------------
        report.checks.append("structural")
        try:
            allocated = parse_function(artifact["ir"])
        except Exception as exc:
            findings.append(f"allocated IR does not parse: {exc}")
            return
        try:
            verify_function(allocated)
        except IRVerificationError as exc:
            findings.append(f"allocated IR fails the IR verifier: {exc}")
        findings.extend(
            verify_allocation(
                allocated, self.regclass, raise_on_failure=False
            )
        )

        # -- bank/subgroup legality -----------------------------------
        report.checks.append("legality")
        try:
            register_file = build_register_file(artifact["file"])
        except Exception as exc:
            findings.append(f"artifact file spec is invalid: {exc}")
            return
        limit = register_file.num_registers
        for vreg, index in sorted(artifact["assignment"].items()):
            if not isinstance(index, int) or not 0 <= index < limit:
                findings.append(
                    f"assignment {vreg} -> {index!r} is outside the "
                    f"{limit}-register file"
                )
        for block in allocated.blocks:
            for instr in block:
                for reg in instr.regs():
                    if (
                        isinstance(reg, PhysicalRegister)
                        and reg.regclass == self.regclass
                        and not 0 <= reg.index < limit
                    ):
                        findings.append(
                            f"{block.label}: {reg!r} is outside the "
                            f"{limit}-register file"
                        )
        static = analyze_static(allocated, register_file, self.regclass)
        recomputed_stats = {
            "instructions": static.instructions,
            "conflict_relevant": static.conflict_relevant,
            "static_conflicts": static.conflicts,
            "bank_conflicts": static.bank_conflicts,
            "subgroup_violations": static.subgroup_violations,
        }
        for name in RECHECKED_STATS:
            claimed = artifact["stats"].get(name)
            if claimed != recomputed_stats[name]:
                findings.append(
                    f"stats.{name} claims {claimed!r} but recomputes to "
                    f"{recomputed_stats[name]!r}"
                )

        # -- machine cycle recheck ------------------------------------
        # Artifacts measured on a non-default machine carry its spec and
        # cycle stats; both must recompute bit-for-bit from the
        # allocated IR (the model is deterministic by construction).
        machine = artifact.get("machine")
        if machine is not None:
            report.checks.append("machine-cycles")
            from ..sim.ooo import OooConfig, OooMachine

            try:
                model = OooMachine(
                    register_file,
                    regclass=self.regclass,
                    config=OooConfig.from_dict(machine),
                )
                cycle_report = model.run(allocated)
            except Exception as exc:
                findings.append(f"machine spec does not replay: {exc}")
            else:
                recomputed_cycles = {
                    "cycles": cycle_report.cycles,
                    "conflict_penalty_cycles":
                        cycle_report.conflict_penalty_cycles,
                    "alignment_penalty_cycles":
                        cycle_report.alignment_penalty_cycles,
                }
                for name, value in recomputed_cycles.items():
                    claimed = artifact["stats"].get(name)
                    if claimed != value:
                        findings.append(
                            f"stats.{name} claims {claimed!r} but the "
                            f"{machine.get('model')} machine recomputes "
                            f"{value!r}"
                        )

        # -- semantic spot-check --------------------------------------
        if original_ir is not None:
            report.checks.append("semantic")
            try:
                original = parse_function(original_ir)
            except Exception as exc:
                findings.append(f"original IR does not parse: {exc}")
                return
            try:
                if not observably_equivalent(original, allocated):
                    findings.append(
                        "allocated function is not observably equivalent "
                        "to the submitted IR (wrong values under the "
                        "reference interpreter)"
                    )
            except ExecutionError as exc:
                findings.append(f"semantic check could not run: {exc}")

    # ------------------------------------------------------------------
    def _verify_module(
        self,
        artifact: dict,
        report: VerificationReport,
        *,
        expected_key: str | None,
    ) -> None:
        """Verify a spliced module artifact: schema, key, every fragment.

        Each fragment is an ordinary function artifact and goes through
        the full per-function check battery; the module-level stats must
        be the exact sum of the fragments' (a bad splice fails here).
        """
        from ..service.artifact import SCHEMA_VERSION

        findings = report.findings
        report.checks.append("module-schema")
        missing = [k for k in MODULE_REQUIRED_FIELDS if k not in artifact]
        if missing:
            findings.append(f"module artifact is missing fields {missing}")
            return
        if artifact["schema"] != SCHEMA_VERSION:
            findings.append(
                f"unknown artifact schema {artifact['schema']!r} "
                f"(expected {SCHEMA_VERSION})"
            )
            return
        if expected_key is not None and artifact["key"] != expected_key:
            findings.append(
                f"module key {artifact['key'][:12]}… does not match the "
                f"request's content address {expected_key[:12]}…"
            )
        fragments = artifact["functions"]
        if not isinstance(fragments, list) or not fragments:
            findings.append("module artifact carries no function fragments")
            return
        report.checks.append("fragments")
        summed: dict = {}
        for i, fragment in enumerate(fragments):
            if not isinstance(fragment, dict):
                findings.append(f"functions[{i}] is not an artifact object")
                continue
            sub = VerificationReport()
            self._verify_dict(
                fragment, sub, expected_key=None, original_ir=None
            )
            findings.extend(
                f"functions[{i}] ({fragment.get('function', '?')}): {f}"
                for f in sub.findings
            )
            for name, value in (fragment.get("stats") or {}).items():
                summed[name] = summed.get(name, 0) + value
        if artifact["stats"] != summed:
            findings.append(
                "module stats are not the sum of the fragment stats "
                "(bad splice)"
            )

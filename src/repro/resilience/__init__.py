"""Resilience layer: deterministic fault injection + artifact verification.

Two halves (see ``docs/RESILIENCE.md``):

* :mod:`.faults` — a seeded, JSON-loadable fault schedule
  (:class:`~repro.resilience.faults.FaultPlan`) and the process-wide
  :data:`~repro.resilience.faults.FAULTS` injector the hardened service
  paths consult.  Armed via ``repro --faults PLAN.json`` or the
  ``REPRO_FAULTS`` environment variable; a plain ``enabled`` attribute
  keeps the disarmed cost at one attribute read per site.
* :mod:`.verifier` — the independent
  :class:`~repro.resilience.verifier.AllocationVerifier`: canonical-byte
  integrity, schema/key, structural allocation checks, bank/subgroup
  legality with stats recomputation, and an interpreter-backed semantic
  spot-check, in ``strict`` / ``cached-only`` / ``off`` modes.

Together they back the chaos invariant the test suite asserts:
**fail-stop or correct** — under any seeded fault schedule, every
successful response carries a verifier-clean artifact bit-identical to
the fault-free run, and every fault is visible in metrics/stats, never
as silent corruption.
"""

from __future__ import annotations

from .faults import (
    FAULTS,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultPoint,
    InjectedFault,
    load_plan,
)
from .verifier import (
    VERIFY_MODES,
    AllocationVerifier,
    ArtifactVerificationError,
    VerificationReport,
)

__all__ = [
    "AllocationVerifier",
    "ArtifactVerificationError",
    "FAULTS",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "InjectedFault",
    "VERIFY_MODES",
    "VerificationReport",
    "load_plan",
]

"""Seeded, deterministic fault injection for the allocation service.

Chaos testing only works when the chaos is *reproducible*: a fault
schedule that fires differently on every run cannot back a CI gate.
This module provides a :class:`FaultPlan` — a JSON-loadable list of
:class:`FaultPoint` rules, each bound to a named injection *site* — and
a process-wide :data:`FAULTS` injector the hardened code paths consult.

Sites (see :data:`SITES` for the modes each accepts):

==================  ====================================================
``cache.disk.read``   corrupt bytes coming off the on-disk cache
                      (``bitflip``, ``truncate``, ``garbage``)
``cache.disk.write``  tear or fail a cache insert (``partial`` writes a
                      truncated entry straight to the final path,
                      bypassing the atomic rename; ``error`` raises
                      ``OSError``)
``queue.execute``     kill, stall, or fail the worker executing a job
                      (``death``, ``stall``, ``error``)
``queue.dispatch``    deliver a drained job twice (``duplicate``)
``client.request``    fail an outgoing HTTP call (``timeout``,
                      ``connreset``)
``server.request``    fail an incoming HTTP call (``error`` → 5xx,
                      ``delay``, ``reset`` drops the connection)
``shard.route``       make the router skip the shard it chose and hand
                      the key to the next one in ring order
                      (``handoff``)
``shard.worker``      break a shard worker so the health loop sees it
                      (``death`` kills the worker process/backend
                      gracefully, ``kill9`` hard-kills it — SIGKILL, no
                      drain, no journal sync — ``unhealthy`` fails the
                      probe without killing)
``queue.journal``     break a write-ahead journal append (``torn-write``
                      commits only a prefix of the frame — replay must
                      truncate it; ``error`` raises mid-append)
==================  ====================================================

Determinism: every point draws from its own ``random.Random`` seeded
with ``(plan seed, site, rule index)``, and fires based only on its own
encounter counter — never on wall time, thread identity, or global RNG
state.  The same plan over the same request sequence injects the same
faults, which is what lets the chaos suite assert bit-identical
responses under fault load.

Zero overhead when off: injection sites guard on ``FAULTS.enabled``, a
plain attribute that is ``False`` unless a plan was armed via
``repro --faults PLAN.json``, the ``REPRO_FAULTS`` environment variable
(read at import, so process-pool workers inherit the plan), or
:meth:`FaultInjector.arm`.
"""

from __future__ import annotations

import json
import os
import random
import threading
from dataclasses import dataclass, field

__all__ = [
    "FAULTS",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "InjectedFault",
    "load_plan",
]

#: Injection sites and the fault modes each accepts.
SITES: dict[str, tuple[str, ...]] = {
    "cache.disk.read": ("bitflip", "truncate", "garbage"),
    "cache.disk.write": ("partial", "error"),
    "queue.execute": ("death", "stall", "error"),
    "queue.dispatch": ("duplicate",),
    "client.request": ("timeout", "connreset"),
    "server.request": ("error", "delay", "reset"),
    "shard.route": ("handoff",),
    "shard.worker": ("death", "unhealthy", "kill9"),
    "queue.journal": ("torn-write", "error"),
}


class FaultError(ValueError):
    """A malformed fault plan (unknown site/mode, bad field types)."""


class InjectedFault(RuntimeError):
    """Raised by raising-type fault modes; carries its site and mode."""

    def __init__(self, site: str, mode: str):
        super().__init__(f"injected fault: {site}/{mode}")
        self.site = site
        self.mode = mode


@dataclass
class FaultPoint:
    """One injection rule: *what* fires *where*, *when*, and *how often*.

    Attributes:
        site: Injection site name (a :data:`SITES` key).
        mode: Fault mode, from the site's accepted set.
        prob: Per-encounter firing probability (1.0 = every encounter).
        times: Total injections this rule may perform (None = unbounded).
        after: Encounters to skip before the rule becomes eligible.
        match: Substring that must appear in the site's context label
            (cache key, job id, URL path, ...); empty matches everything.
        detail: Mode-specific knobs — ``bit`` (bitflip), ``keep``
            (truncate: bytes kept), ``stall_s``/``delay_s`` (stall/delay
            seconds), ``status`` (server error code).
    """

    site: str
    mode: str
    prob: float = 1.0
    times: int | None = None
    after: int = 0
    match: str = ""
    detail: dict = field(default_factory=dict)
    # Runtime accounting (not part of the schema).
    encounters: int = field(default=0, repr=False)
    injected: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{sorted(SITES)}"
            )
        if self.mode not in SITES[self.site]:
            raise FaultError(
                f"site {self.site!r} does not support mode {self.mode!r}; "
                f"expected one of {SITES[self.site]}"
            )
        if not 0.0 <= float(self.prob) <= 1.0:
            raise FaultError(f"prob must be in [0, 1], got {self.prob}")
        if self.times is not None and int(self.times) < 0:
            raise FaultError("times must be >= 0")
        if int(self.after) < 0:
            raise FaultError("after must be >= 0")
        if not isinstance(self.detail, dict):
            raise FaultError(
                "detail must be a JSON object of mode knobs, got "
                f"{type(self.detail).__name__}"
            )


@dataclass
class FaultPlan:
    """A seeded schedule of :class:`FaultPoint` rules."""

    seed: int = 0
    points: list[FaultPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._rngs = [
            random.Random(f"{self.seed}:{p.site}:{i}")
            for i, p in enumerate(self.points)
        ]

    @classmethod
    def from_dict(cls, data: dict) -> FaultPlan:
        if not isinstance(data, dict):
            raise FaultError("fault plan must be a JSON object")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise FaultError(f"unknown fault plan keys {sorted(unknown)}")
        raw_points = data.get("faults", [])
        if not isinstance(raw_points, list):
            raise FaultError("'faults' must be a list of rules")
        points = []
        for raw in raw_points:
            if not isinstance(raw, dict):
                raise FaultError("each fault rule must be a JSON object")
            extra = set(raw) - {
                "site", "mode", "prob", "times", "after", "match", "detail"
            }
            if extra:
                raise FaultError(f"unknown fault rule keys {sorted(extra)}")
            try:
                points.append(FaultPoint(**raw))
            except TypeError as exc:
                raise FaultError(f"bad fault rule {raw!r}: {exc}") from exc
        return cls(seed=int(data.get("seed", 0)), points=points)

    def fire(self, site: str, label: str = "") -> FaultPoint | None:
        """The first rule that fires at *site* for *label*, if any.

        Firing consumes the rule's budget (``times``) and advances its
        encounter counter; rules that do not match the label do not see
        the encounter, so one site can carry independent schedules for
        different keys/jobs.
        """
        with self._lock:
            for i, point in enumerate(self.points):
                if point.site != site:
                    continue
                if point.match and point.match not in label:
                    continue
                point.encounters += 1
                if point.encounters <= point.after:
                    continue
                if point.times is not None and point.injected >= point.times:
                    continue
                if point.prob < 1.0 and self._rngs[i].random() >= point.prob:
                    continue
                point.injected += 1
                return point
        return None

    def stats(self) -> dict:
        """Per-rule encounter/injection counts (stable rule order)."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [
                    {
                        "site": p.site,
                        "mode": p.mode,
                        "encounters": p.encounters,
                        "injected": p.injected,
                    }
                    for p in self.points
                ],
                "injected_total": sum(p.injected for p in self.points),
            }


def load_plan(path: str) -> FaultPlan:
    """Load and validate a fault plan from a JSON file."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise FaultError(f"cannot read fault plan {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FaultError(f"fault plan {path!r} is not valid JSON: {exc}") from exc
    return FaultPlan.from_dict(data)


class FaultInjector:
    """Process-wide injection switchboard (:data:`FAULTS`).

    ``enabled`` is a plain attribute: hardened code guards every site
    with ``if FAULTS.enabled:``, so a production process with no plan
    armed pays one attribute read per site — nothing else.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.plan: FaultPlan | None = None

    def arm(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.enabled = True

    def disarm(self) -> None:
        self.plan = None
        self.enabled = False

    # ------------------------------------------------------------------
    def fire(self, site: str, label: str = "") -> FaultPoint | None:
        """Consult the armed plan at *site*; ``None`` = no fault."""
        if not self.enabled or self.plan is None:
            return None
        point = self.plan.fire(site, label)
        if point is not None:
            # Lazy import: obs must stay importable without resilience.
            from ..obs import METRICS
            from ..obs.telemetry import TELEMETRY

            METRICS.inc(f"faults.{site}.{point.mode}")
            # With telemetry on, the firing lands on whatever request
            # context is active — traces show *which* request the chaos
            # plan hit, not just that it hit.
            TELEMETRY.event(
                f"fault.{site}", mode=point.mode, label=label[:48]
            )
        return point

    def corrupt(
        self, site: str, data: bytes, label: str = ""
    ) -> tuple[bytes, FaultPoint | None]:
        """Byte-corruption sites: returns (possibly corrupted) *data*.

        ``bitflip`` flips one deterministic bit, ``truncate`` keeps a
        prefix, ``garbage`` replaces the payload outright.
        """
        point = self.fire(site, label)
        if point is None or not data:
            return data, point
        if point.mode == "bitflip":
            index = int(point.detail.get("byte", len(data) // 2)) % len(data)
            bit = int(point.detail.get("bit", 3)) % 8
            corrupted = bytearray(data)
            corrupted[index] ^= 1 << bit
            return bytes(corrupted), point
        if point.mode == "truncate":
            keep = int(point.detail.get("keep", len(data) // 2))
            return data[: max(0, keep)], point
        if point.mode == "garbage":
            return b"\x00garbage\xff" * 3, point
        return data, point

    def stats(self) -> dict | None:
        """Plan accounting, or ``None`` while disarmed."""
        return self.plan.stats() if self.plan is not None else None


FAULTS = FaultInjector()


def _arm_from_env() -> None:
    """Arm from ``REPRO_FAULTS`` (a plan path) if set.

    Runs at import so process-pool workers — which inherit the
    environment but not the parent's Python state — rebuild the plan
    and inject on their side of the fork/spawn too.
    """
    path = os.environ.get("REPRO_FAULTS", "").strip()
    if path:
        FAULTS.arm(load_plan(path))


_arm_from_env()

"""Basic blocks.

A block is a labeled straight-line instruction sequence ending in at most
one terminator.  Successor edges are derived from the terminator's target
labels plus fall-through; the function object resolves labels to blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .instruction import Instruction, OpKind


@dataclass
class BasicBlock:
    """A labeled basic block.

    Attributes:
        label: Unique label within the function.
        instructions: The instruction list; the terminator, when present,
            is last.
        attrs: Metadata.  Recognized keys: ``"loop_header"`` (bool),
            ``"trip_count"`` (int, on loop headers — drives Eq. 1 and the
            dynamic simulator).
    """

    label: str
    instructions: list[Instruction] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)

    def append(self, instr: Instruction) -> Instruction:
        """Append *instr*, keeping the terminator (if any) last."""
        if self.instructions and self.instructions[-1].is_terminator and not instr.is_terminator:
            self.instructions.insert(len(self.instructions) - 1, instr)
        else:
            self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        self.instructions.insert(index, instr)
        return instr

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successor_labels(self, next_label: str | None) -> list[str]:
        """Labels of successor blocks given the layout-order *next_label*.

        A conditional branch has two successors (target + fall-through);
        an unconditional jump one; a return none; a missing terminator
        falls through.
        """
        term = self.terminator
        if term is None:
            return [next_label] if next_label is not None else []
        if term.kind is OpKind.JUMP:
            return [term.attrs["target"]]
        if term.kind is OpKind.BRANCH:
            succs = [term.attrs["target"]]
            if next_label is not None and next_label not in succs:
                succs.append(next_label)
            return succs
        if term.kind is OpKind.RET:
            return []
        return [next_label] if next_label is not None else []

    def body(self) -> Iterator[Instruction]:
        """Iterate non-terminator instructions."""
        for instr in self.instructions:
            if not instr.is_terminator:
                yield instr

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.instructions)} instrs)"

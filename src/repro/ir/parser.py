"""Parser for the textual IR format emitted by :mod:`repro.ir.printer`.

The parser exists for tests, examples, and hand-written kernels; workload
generators construct IR programmatically through the builder.  It accepts
exactly what the printer produces plus insignificant whitespace and
``;``-prefixed comments.
"""

from __future__ import annotations

import re

from .block import BasicBlock
from .function import Function, Module
from .instruction import Instruction, OpKind
from .types import FP, GP, Immediate, PhysicalRegister, RegClass, VirtualRegister

_FUNC_RE = re.compile(r"^func\s+@([\w.$-]+)\s*\{$")
_BLOCK_RE = re.compile(r"^block\s+([\w.$-]+)(?:\s*\[([^\]]*)\])?:$")
_VREG_RE = re.compile(r"^%v(\d+):(\w+)$")
_PREG_RE = re.compile(r"^\$(\w+?)(\d+)$")
_IMM_RE = re.compile(r"^#(-?[\d.eE+]+)$")

_CLASSES: dict[str, RegClass] = {"fp": FP, "gp": GP}

#: Opcode -> kind mapping for parsing.  Arithmetic is the open-ended
#: default for unknown mnemonics with a def.
_KIND_BY_OPCODE = {
    "mov": OpKind.COPY,
    "load": OpKind.LOAD,
    "store": OpKind.STORE,
    "li": OpKind.LOADIMM,
    "br": OpKind.BRANCH,
    "jmp": OpKind.JUMP,
    "ret": OpKind.RET,
    "call": OpKind.CALL,
    "nop": OpKind.NOP,
}


class ParseError(ValueError):
    """Raised on malformed IR text, with a line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def register_class(name: str) -> RegClass:
    """Resolve a class name used in the textual format."""
    try:
        return _CLASSES[name]
    except KeyError:
        raise KeyError(f"unknown register class {name!r}") from None


def _parse_operand(text: str, lineno: int):
    text = text.strip()
    if m := _VREG_RE.match(text):
        return VirtualRegister(int(m.group(1)), register_class(m.group(2)))
    if m := _PREG_RE.match(text):
        return PhysicalRegister(int(m.group(2)), register_class(m.group(1)))
    if m := _IMM_RE.match(text):
        raw = m.group(1)
        value = float(raw)
        if value.is_integer() and "." not in raw and "e" not in raw.lower():
            return Immediate(int(raw))
        return Immediate(value)
    raise ParseError(lineno, f"cannot parse operand {text!r}")


def _split_operands(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_instruction(line: str, lineno: int) -> Instruction:
    attrs: dict = {}
    # Only a spaced "=" separates defs from the opcode; "=" may also occur
    # inside attribute tokens such as "prob=0.75".
    pieces = re.split(r"\s=\s", line, maxsplit=1)
    if len(pieces) == 2:
        defs_text, body = pieces[0], pieces[1].strip()
    else:
        defs_text, body = "", line.strip()
    defs = tuple(_parse_operand(t, lineno) for t in _split_operands(defs_text))

    parts = body.split(None, 1)
    opcode = parts[0]
    operand_text = parts[1] if len(parts) > 1 else ""
    kind = _KIND_BY_OPCODE.get(opcode, OpKind.ARITH)

    if kind in (OpKind.BRANCH, OpKind.JUMP):
        tokens = operand_text.split()
        if not tokens:
            raise ParseError(lineno, f"{opcode} requires a target label")
        attrs["target"] = tokens[0]
        uses: list = []
        for token in tokens[1:]:
            token = token.rstrip(",")
            if token.startswith("prob="):
                attrs["taken_prob"] = float(token[len("prob="):])
            else:
                uses.append(_parse_operand(token, lineno))
        return Instruction(opcode, kind, defs, tuple(uses), attrs)

    uses = tuple(_parse_operand(t, lineno) for t in _split_operands(operand_text))
    return Instruction(opcode, kind, defs, uses, attrs)


def parse_function(text: str) -> Function:
    """Parse a single ``func @name { ... }`` definition."""
    functions = parse_module(text).functions
    if len(functions) != 1:
        raise ValueError(f"expected exactly one function, found {len(functions)}")
    return functions[0]


def parse_module(text: str, name: str = "module") -> Module:
    """Parse any number of function definitions into a module."""
    module = Module(name)
    function: Function | None = None
    block: BasicBlock | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if m := _FUNC_RE.match(line):
            if function is not None:
                raise ParseError(lineno, "nested 'func' (missing closing '}')")
            function = Function(m.group(1))
            block = None
            continue
        if line == "}":
            if function is None:
                raise ParseError(lineno, "'}' outside a function")
            _adopt_vregs(function)
            module.add(function)
            function = None
            continue
        if function is None:
            raise ParseError(lineno, f"statement outside a function: {line!r}")
        if m := _BLOCK_RE.match(line):
            block = function.add_block(m.group(1))
            for item in (m.group(2) or "").split():
                key, _, value = item.partition("=")
                if key == "trip":
                    block.attrs["loop_header"] = True
                    block.attrs["trip_count"] = int(value)
                else:
                    raise ParseError(lineno, f"unknown block attribute {key!r}")
            continue
        if block is None:
            raise ParseError(lineno, "instruction before any 'block' line")
        block.append(_parse_instruction(line, lineno))
    if function is not None:
        raise ParseError(lineno, "unterminated function (missing '}')")
    return module


def _adopt_vregs(function: Function) -> None:
    """Register all parsed vregs with the function's factory."""
    for vreg in function.virtual_registers():
        function.vregs.adopt(vreg)

"""Core value types of the machine IR: register classes and registers.

The IR models a late, machine-level representation comparable to LLVM's
Machine IR after instruction selection: instructions operate on *virtual
registers* drawn from *register classes*, and register allocation rewrites
them to *physical registers* of the same class.

Bank information is deliberately not part of these types: which bank a
physical register belongs to is a property of the target register file
(see :mod:`repro.banks.register_file`), mirroring the paper's setting where
bank structure is a micro-architectural decoding of the register index.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RegClass:
    """A register class (e.g. floating-point vector registers).

    Attributes:
        name: Human-readable class name, unique within a target.
        bankable: Whether registers of this class live in a banked register
            file and therefore participate in bank-conflict analysis.  The
            paper only banks the floating-point/vector file; integer
            registers are allocated normally and never conflict.
    """

    name: str
    bankable: bool = True

    def __repr__(self) -> str:
        return f"RegClass({self.name!r})"


#: The default floating-point/vector register class used throughout the
#: reproduction.  All bank-conflict analysis applies to this class.
FP = RegClass("fp", bankable=True)

#: General-purpose (integer) register class.  Not banked; used for address
#: arithmetic and loop control in generated workloads.
GP = RegClass("gp", bankable=False)


@dataclass(frozen=True)
class VirtualRegister:
    """A virtual register: an SSA-like value name prior to allocation.

    Virtual registers are identified by an integer id, unique within a
    function, plus their register class.  They are immutable and hashable so
    they can serve as graph vertices (RIG/RCG/SDG) and dict keys.
    """

    vid: int
    regclass: RegClass = FP

    def __post_init__(self):
        # Registers are dict keys on every hot path (liveness sets, RCG
        # adjacency, bank maps); caching the tuple hash once here keeps
        # the *value* identical while skipping the per-lookup recompute.
        object.__setattr__(self, "_hash", hash((self.vid, self.regclass)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def name(self) -> str:
        return f"%v{self.vid}"

    def __repr__(self) -> str:
        return f"{self.name}:{self.regclass.name}"


@dataclass(frozen=True)
class PhysicalRegister:
    """A physical register: an architectural register index within a class.

    The index is the *register number* of the paper's Fig. 6; the target
    register file decodes it into bank (and, on the DSA, subgroup) numbers.
    """

    index: int
    regclass: RegClass = FP

    def __post_init__(self):
        object.__setattr__(self, "_hash", hash((self.index, self.regclass)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def name(self) -> str:
        prefix = "f" if self.regclass.bankable else "x"
        return f"${prefix}{self.index}"

    def __repr__(self) -> str:
        return self.name


Register = VirtualRegister | PhysicalRegister
"""Either kind of register; instruction operands hold this union."""


@dataclass(frozen=True)
class Immediate:
    """A constant operand.  Kept simple: a Python float or int payload."""

    value: float | int

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = Register | Immediate
"""Anything that may appear in an instruction's use list."""


def is_vreg(value: object) -> bool:
    """Return True if *value* is a virtual register."""
    return isinstance(value, VirtualRegister)


def is_preg(value: object) -> bool:
    """Return True if *value* is a physical register."""
    return isinstance(value, PhysicalRegister)


def is_reg(value: object) -> bool:
    """Return True if *value* is a register of either kind."""
    return isinstance(value, (VirtualRegister, PhysicalRegister))


@dataclass
class VRegFactory:
    """Allocates fresh virtual register ids for one function.

    Splitting and spilling create new virtual registers late in the
    pipeline; routing all creation through a factory keeps ids unique even
    after transformation passes have run.
    """

    next_vid: int = 0
    _by_id: dict[int, VirtualRegister] = field(default_factory=dict)

    def make(self, regclass: RegClass = FP) -> VirtualRegister:
        """Create a fresh virtual register of *regclass*."""
        reg = VirtualRegister(self.next_vid, regclass)
        self._by_id[self.next_vid] = reg
        self.next_vid += 1
        return reg

    def adopt(self, reg: VirtualRegister) -> None:
        """Record an externally created vreg so future ids do not collide."""
        self._by_id[reg.vid] = reg
        if reg.vid >= self.next_vid:
            self.next_vid = reg.vid + 1

    def get(self, vid: int) -> VirtualRegister:
        """Look up a previously created vreg by id."""
        return self._by_id[vid]

    def __len__(self) -> int:
        return len(self._by_id)

"""Machine instructions.

An instruction has an opcode, a tuple of *defs* (registers written) and a
tuple of *uses* (operands read).  The conflict model of the paper is purely
operand-positional: an instruction is *conflict-relevant* when it reads two
or more distinct registers of a bankable class in the same cycle
(see §II-A), so no further machine detail is required here.

Opcodes are grouped into small families (arithmetic, memory, control, copy)
via :class:`OpKind`; simulators and analyses dispatch on the family, never
on individual opcode strings, so workload generators are free to use any
mnemonic they like.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterator

from .types import (
    Immediate,
    Operand,
    PhysicalRegister,
    Register,
    RegClass,
    VirtualRegister,
    is_reg,
)


class OpKind(enum.Enum):
    """Instruction family used by analyses and simulators."""

    ARITH = "arith"      # register-to-register compute (fadd, fmul, ...)
    COPY = "copy"        # register copy (mov)
    LOAD = "load"        # memory -> register
    STORE = "store"      # register -> memory
    LOADIMM = "loadimm"  # constant materialization
    BRANCH = "branch"    # conditional branch (falls through or jumps)
    JUMP = "jump"        # unconditional jump
    RET = "ret"          # function return
    CALL = "call"        # call (clobbers nothing in this model; a barrier)
    NOP = "nop"


#: Default opcode name for each kind, used by the builder's helpers.
_DEFAULT_OPCODE = {
    OpKind.COPY: "mov",
    OpKind.LOAD: "load",
    OpKind.STORE: "store",
    OpKind.LOADIMM: "li",
    OpKind.BRANCH: "br",
    OpKind.JUMP: "jmp",
    OpKind.RET: "ret",
    OpKind.CALL: "call",
    OpKind.NOP: "nop",
}

#: Per-kind base latency in cycles, used by the DSA cycle model.
BASE_LATENCY = {
    OpKind.ARITH: 1,
    OpKind.COPY: 1,
    OpKind.LOAD: 2,
    OpKind.STORE: 2,
    OpKind.LOADIMM: 1,
    OpKind.BRANCH: 1,
    OpKind.JUMP: 1,
    OpKind.RET: 1,
    OpKind.CALL: 1,
    OpKind.NOP: 1,
}


@dataclass
class Instruction:
    """One machine instruction.

    Attributes:
        opcode: Mnemonic, e.g. ``"fmul"``.  Free-form within a kind.
        kind: The :class:`OpKind` family.
        defs: Registers written by the instruction.
        uses: Operands read (registers and immediates), in operand order.
        attrs: Free-form metadata.  Recognized keys include
            ``"taken_prob"`` on branches (dynamic simulator),
            ``"spill_slot"`` on spill loads/stores, and
            ``"split_copy"``/``"sdg_copy"`` marking compiler-inserted copies.
    """

    opcode: str
    kind: OpKind
    defs: tuple[Register, ...] = ()
    uses: tuple[Operand, ...] = ()
    attrs: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Operand access helpers
    # ------------------------------------------------------------------
    def reg_uses(self) -> tuple[Register, ...]:
        """All register operands read, in operand order (with duplicates)."""
        return tuple(u for u in self.uses if is_reg(u))

    def reg_defs(self) -> tuple[Register, ...]:
        """All registers written."""
        return self.defs

    def regs(self) -> Iterator[Register]:
        """All registers referenced (uses then defs)."""
        yield from self.reg_uses()
        yield from self.defs

    def vreg_uses(self) -> tuple[VirtualRegister, ...]:
        return tuple(u for u in self.uses if isinstance(u, VirtualRegister))

    def vreg_defs(self) -> tuple[VirtualRegister, ...]:
        return tuple(d for d in self.defs if isinstance(d, VirtualRegister))

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.kind in (OpKind.BRANCH, OpKind.JUMP, OpKind.RET)

    @property
    def is_copy(self) -> bool:
        return self.kind is OpKind.COPY

    @property
    def latency(self) -> int:
        return self.attrs.get("latency", BASE_LATENCY[self.kind])

    def bankable_reads(self, regclass: RegClass | None = None) -> tuple[Register, ...]:
        """Distinct bankable register operands read by this instruction.

        These are the operands that compete for register-file read ports;
        two of them decoding to the same bank is a bank conflict (§II-A).
        Operand *order* is preserved; duplicates (the same register read
        twice, e.g. ``fmul a, a``) are collapsed because a repeated read of
        one register is served by a single port access in the modeled
        hardware.
        """
        # Operands are immutable (``uses`` is a tuple and rewrites go
        # through :meth:`rewrite`, which returns a fresh copy), so the
        # scan result is memoized per (instruction, regclass) — this is
        # the innermost loop of every conflict-cost fold.
        cache = getattr(self, "_bankable_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_bankable_cache", cache)
        hit = cache.get(regclass)
        if hit is not None:
            return hit
        seen: list[Register] = []
        for use in self.uses:
            if not is_reg(use):
                continue
            if not use.regclass.bankable:
                continue
            if regclass is not None and use.regclass != regclass:
                continue
            if use not in seen:
                seen.append(use)
        result = tuple(seen)
        cache[regclass] = result
        return result

    def is_conflict_relevant(self, regclass: RegClass | None = None) -> bool:
        """True when the instruction reads >= 2 distinct bankable registers.

        Matches the paper's *conflict-relevant instruction* definition:
        only such instructions can ever trigger a bank conflict.
        Control-flow and memory instructions read at most one bankable
        operand per port in our machine model and are excluded by
        construction of their use lists.
        """
        return self.kind is OpKind.ARITH and len(self.bankable_reads(regclass)) >= 2

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------
    def rewrite(self, mapping: dict[Register, Register]) -> "Instruction":
        """Return a copy with registers substituted through *mapping*.

        Registers absent from the mapping are kept as-is.  ``attrs`` is
        shared intentionally (metadata is immutable by convention).
        """
        new_defs = tuple(mapping.get(d, d) for d in self.defs)
        new_uses = tuple(
            mapping.get(u, u) if is_reg(u) else u for u in self.uses
        )
        return replace(self, defs=new_defs, uses=new_uses)

    def __repr__(self) -> str:
        defs = ", ".join(repr(d) for d in self.defs)
        uses = ", ".join(repr(u) for u in self.uses)
        if defs and uses:
            return f"{defs} = {self.opcode} {uses}"
        if defs:
            return f"{defs} = {self.opcode}"
        if uses:
            return f"{self.opcode} {uses}"
        return self.opcode


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def arith(opcode: str, dst: Register, *srcs: Operand, **attrs) -> Instruction:
    """Build an arithmetic instruction ``dst = opcode srcs...``."""
    return Instruction(opcode, OpKind.ARITH, (dst,), tuple(srcs), dict(attrs))


def copy(dst: Register, src: Register, **attrs) -> Instruction:
    """Build a register copy ``dst = mov src``."""
    return Instruction(_DEFAULT_OPCODE[OpKind.COPY], OpKind.COPY, (dst,), (src,), dict(attrs))


def load(dst: Register, addr: Operand | None = None, **attrs) -> Instruction:
    uses = (addr,) if addr is not None else ()
    return Instruction(_DEFAULT_OPCODE[OpKind.LOAD], OpKind.LOAD, (dst,), uses, dict(attrs))


def store(src: Register, addr: Operand | None = None, **attrs) -> Instruction:
    uses = (src, addr) if addr is not None else (src,)
    return Instruction(_DEFAULT_OPCODE[OpKind.STORE], OpKind.STORE, (), uses, dict(attrs))


def loadimm(dst: Register, value: float | int, **attrs) -> Instruction:
    return Instruction(
        _DEFAULT_OPCODE[OpKind.LOADIMM], OpKind.LOADIMM, (dst,), (Immediate(value),), dict(attrs)
    )


def branch(target: str, *, taken_prob: float = 0.5, cond: Register | None = None, **attrs) -> Instruction:
    """Conditional branch to *target* (block label); falls through otherwise.

    ``taken_prob`` drives the dynamic simulator's seeded branch decisions,
    standing in for the data-dependent behaviour of the paper's QEMU runs.
    """
    meta = dict(attrs)
    meta["target"] = target
    meta["taken_prob"] = taken_prob
    uses = (cond,) if cond is not None else ()
    return Instruction(_DEFAULT_OPCODE[OpKind.BRANCH], OpKind.BRANCH, (), uses, meta)


def jump(target: str, **attrs) -> Instruction:
    meta = dict(attrs)
    meta["target"] = target
    return Instruction(_DEFAULT_OPCODE[OpKind.JUMP], OpKind.JUMP, (), (), meta)


def ret(*values: Operand, **attrs) -> Instruction:
    return Instruction(_DEFAULT_OPCODE[OpKind.RET], OpKind.RET, (), tuple(values), dict(attrs))


def nop(**attrs) -> Instruction:
    return Instruction(_DEFAULT_OPCODE[OpKind.NOP], OpKind.NOP, (), (), dict(attrs))

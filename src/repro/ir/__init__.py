"""Machine IR substrate: types, instructions, blocks, functions, builder,
CFG/dominators, natural loops, printer/parser, and verifier.

This is the layer the paper's LLVM Machine IR plays; everything above
(analyses, allocators, the PresCount bank assigner, simulators) consumes
only the interfaces exported here.
"""

from .block import BasicBlock
from .builder import IRBuilder
from .cfg import CFG
from .dot import cfg_to_dot, interference_to_dot, sdg_to_dot
from .function import Function, Module
from .instruction import (
    Instruction,
    OpKind,
    arith,
    branch,
    copy,
    jump,
    load,
    loadimm,
    nop,
    ret,
    store,
)
from .loops import DEFAULT_TRIP_COUNT, Loop, LoopInfo
from .parser import ParseError, parse_function, parse_module
from .printer import format_instruction, print_function, print_module
from .types import (
    FP,
    GP,
    Immediate,
    PhysicalRegister,
    RegClass,
    Register,
    VirtualRegister,
    VRegFactory,
    is_preg,
    is_reg,
    is_vreg,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock",
    "CFG",
    "DEFAULT_TRIP_COUNT",
    "FP",
    "Function",
    "GP",
    "Immediate",
    "IRBuilder",
    "Instruction",
    "Loop",
    "LoopInfo",
    "Module",
    "OpKind",
    "ParseError",
    "PhysicalRegister",
    "RegClass",
    "Register",
    "VRegFactory",
    "VerificationError",
    "VirtualRegister",
    "arith",
    "branch",
    "cfg_to_dot",
    "interference_to_dot",
    "sdg_to_dot",
    "copy",
    "format_instruction",
    "is_preg",
    "is_reg",
    "is_vreg",
    "jump",
    "load",
    "loadimm",
    "nop",
    "parse_function",
    "parse_module",
    "print_function",
    "print_module",
    "ret",
    "store",
    "verify_function",
    "verify_module",
]

"""Textual dump of the IR, round-trippable through :mod:`repro.ir.parser`.

Format example::

    func @saxpy {
    block entry:
      %v0:fp = li #2.0
      jmp loop1.header
    block loop1.header [trip=64]:
      %v3:fp = fmul %v0:fp, %v1:fp
      %v2:fp = fadd %v3:fp, %v2:fp
      br loop1.header prob=0.984
    block loop1.exit:
      ret %v2:fp
    }
"""

from __future__ import annotations

from .block import BasicBlock
from .function import Function, Module
from .instruction import Instruction, OpKind
from .types import Immediate, PhysicalRegister, VirtualRegister


def format_operand(op) -> str:
    if isinstance(op, VirtualRegister):
        return f"%v{op.vid}:{op.regclass.name}"
    if isinstance(op, PhysicalRegister):
        return f"${op.regclass.name}{op.index}"
    if isinstance(op, Immediate):
        return f"#{op.value}"
    raise TypeError(f"unknown operand {op!r}")


def format_instruction(instr: Instruction) -> str:
    parts = []
    if instr.defs:
        parts.append(", ".join(format_operand(d) for d in instr.defs))
        parts.append("=")
    parts.append(instr.opcode)
    if instr.kind in (OpKind.BRANCH, OpKind.JUMP):
        parts.append(instr.attrs["target"])
        if instr.kind is OpKind.BRANCH:
            operand_text = ", ".join(format_operand(u) for u in instr.uses)
            if operand_text:
                parts.append(operand_text)
            parts.append(f"prob={instr.attrs.get('taken_prob', 0.5):g}")
    elif instr.uses:
        parts.append(", ".join(format_operand(u) for u in instr.uses))
    return " ".join(parts)


def format_block_header(block: BasicBlock) -> str:
    meta = []
    if block.attrs.get("trip_count") is not None and block.attrs.get("loop_header"):
        meta.append(f"trip={block.attrs['trip_count']}")
    suffix = f" [{' '.join(meta)}]" if meta else ""
    return f"block {block.label}{suffix}:"


def print_function(function: Function, annotations=None) -> str:
    """Textual dump of *function*.

    *annotations* optionally maps ``(block label, instruction index)`` to
    a trailing ``; ...`` comment — the conflict profiler uses this to
    render annotated hotspot listings.  Comments are ignored by the
    parser, so annotated output still round-trips.
    """
    lines = [f"func @{function.name} {{"]
    for block in function.blocks:
        lines.append(format_block_header(block))
        for index, instr in enumerate(block):
            text = f"  {format_instruction(instr)}"
            note = annotations.get((block.label, index)) if annotations else None
            if note:
                text += f"  ; {note}"
            lines.append(text)
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    return "\n\n".join(print_function(f) for f in module.functions)

"""Structured IR construction.

Workload generators and tests build functions through :class:`IRBuilder`,
which lowers structured ``loop``/``if_then`` regions into the natural-loop
CFG shape that the analyses expect (preheader -> header -> ... -> latch
back-edge -> exit).  Example::

    b = IRBuilder("saxpy")
    x, y, a = b.fresh(), b.fresh(), b.fresh()
    b.loadimm(a, 2.0)
    with b.loop(trip_count=64):
        t = b.arith("fmul", a, x)
        b.arith_into(y, "fadd", t, y)
    b.ret(y)
    fn = b.function
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from . import instruction as ins
from .block import BasicBlock
from .function import Function
from .types import FP, Operand, Register, RegClass, VirtualRegister


@dataclass
class _LoopFrame:
    header: BasicBlock
    exit_label: str
    trip_count: int


class IRBuilder:
    """Builds a :class:`Function` with structured control flow."""

    def __init__(self, name: str, regclass: RegClass = FP):
        self.function = Function(name)
        self.regclass = regclass
        self._current = self.function.add_block("entry")
        self._label_counter = 0
        self._loop_stack: list[_LoopFrame] = []

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------
    def fresh(self, regclass: RegClass | None = None) -> VirtualRegister:
        """A fresh virtual register (defaults to the builder's class)."""
        return self.function.new_vreg(regclass or self.regclass)

    def fresh_many(self, count: int, regclass: RegClass | None = None) -> list[VirtualRegister]:
        return [self.fresh(regclass) for _ in range(count)]

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    @property
    def current_block(self) -> BasicBlock:
        return self._current

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def _start_block(self, label: str) -> BasicBlock:
        block = self.function.add_block(label)
        self._current = block
        return block

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------
    def emit(self, instr: ins.Instruction) -> ins.Instruction:
        """Append a prebuilt instruction to the current block."""
        return self._current.append(instr)

    def arith(self, opcode: str, *srcs: Operand, **attrs) -> VirtualRegister:
        """Emit ``dst = opcode srcs...`` into a fresh register; return dst."""
        dst = self.fresh()
        self.emit(ins.arith(opcode, dst, *srcs, **attrs))
        return dst

    def arith_into(self, dst: Register, opcode: str, *srcs: Operand, **attrs) -> Register:
        """Emit ``dst = opcode srcs...`` into an existing register."""
        self.emit(ins.arith(opcode, dst, *srcs, **attrs))
        return dst

    def copy(self, dst: Register, src: Register, **attrs) -> Register:
        self.emit(ins.copy(dst, src, **attrs))
        return dst

    def loadimm(self, dst: Register, value: float | int) -> Register:
        self.emit(ins.loadimm(dst, value))
        return dst

    def const(self, value: float | int) -> VirtualRegister:
        """Materialize a constant into a fresh register."""
        dst = self.fresh()
        self.loadimm(dst, value)
        return dst

    def load(self, addr: Operand | None = None, **attrs) -> VirtualRegister:
        dst = self.fresh()
        self.emit(ins.load(dst, addr, **attrs))
        return dst

    def store(self, src: Register, addr: Operand | None = None, **attrs) -> None:
        self.emit(ins.store(src, addr, **attrs))

    def ret(self, *values: Operand) -> None:
        self.emit(ins.ret(*values))

    # ------------------------------------------------------------------
    # Structured control flow
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, trip_count: int, label_hint: str = "loop"):
        """A counted loop region; body instructions go into the loop.

        Lowering::

            <current>:  jmp header
            header:     (loop_header, trip_count)  <body...>
            ...         (possibly more body blocks)
            <latch>:    br header (prob (t-1)/t); fall-through to exit
            exit:       <construction continues here>
        """
        if trip_count < 1:
            raise ValueError(f"trip_count must be >= 1, got {trip_count}")
        base = self._new_label(label_hint)
        header_label = f"{base}.header"
        exit_label = f"{base}.exit"
        self.emit(ins.jump(header_label))
        header = self._start_block(header_label)
        header.attrs["loop_header"] = True
        header.attrs["trip_count"] = trip_count
        frame = _LoopFrame(header, exit_label, trip_count)
        self._loop_stack.append(frame)
        try:
            yield frame
        finally:
            self._loop_stack.pop()
            taken = (trip_count - 1) / trip_count if trip_count > 1 else 0.0
            self.emit(ins.branch(header_label, taken_prob=taken, loop_latch=True))
            self._start_block(exit_label)

    @contextlib.contextmanager
    def if_then(self, taken_prob: float = 0.5, label_hint: str = "if"):
        """A one-armed conditional; body executes with *taken_prob*.

        Lowering::

            <current>: br then (prob); fall-through to cont
            cont:      jmp join
            then:      <body...>; jmp join     (body placed after cont)
            join:      <construction continues here>

        The then-block is placed *after* the fall-through continuation so
        the branch target is a forward edge, keeping the CFG reducible.
        """
        base = self._new_label(label_hint)
        then_label = f"{base}.then"
        join_label = f"{base}.join"
        self.emit(ins.branch(then_label, taken_prob=taken_prob))
        cont = self._start_block(f"{base}.cont")
        cont.append(ins.jump(join_label))
        self._start_block(then_label)
        try:
            yield
        finally:
            self.emit(ins.jump(join_label))
            self._start_block(join_label)

    @contextlib.contextmanager
    def if_else(self, taken_prob: float = 0.5, label_hint: str = "if"):
        """A two-armed conditional: yields a switcher for the else arm.

        Usage::

            with b.if_else(0.3) as orelse:
                ... then-arm instructions ...
                orelse()
                ... else-arm instructions ...

        Lowering (the then arm is the fall-through, so the branch jumps to
        the else arm with probability ``1 - taken_prob``)::

            <current>: br else (1 - prob); fall-through to then
            then:      <then body...>; jmp join
            else:      <else body...>; jmp join
            join:      <construction continues here>
        """
        base = self._new_label(label_hint)
        then_label = f"{base}.then"
        else_label = f"{base}.else"
        join_label = f"{base}.join"
        self.emit(ins.branch(else_label, taken_prob=1.0 - taken_prob))
        self._start_block(then_label)
        state = {"arm": "then"}

        def orelse() -> None:
            if state["arm"] != "then":
                raise RuntimeError("orelse() may only be called once, after the then arm")
            self.emit(ins.jump(join_label))
            state["arm"] = "else"
            self._start_block(else_label)

        try:
            yield orelse
        finally:
            self.emit(ins.jump(join_label))
            if state["arm"] == "then":
                # orelse() was never invoked: synthesize an empty else arm so
                # the branch target exists.
                empty = self._start_block(else_label)
                empty.append(ins.jump(join_label))
            self._start_block(join_label)

    # ------------------------------------------------------------------
    def finish(self) -> Function:
        """Terminate the function (adds ``ret`` if missing) and return it."""
        if self._current.terminator is None:
            self.ret()
        return self.function

"""Natural loop detection, loop nesting, trip counts, and block frequency.

The paper's cost model (Eq. 1) multiplies the trip counts of all loops
enclosing an instruction: ``Cost_I = prod_i trip_count(i)``.  This module
provides exactly that: a loop forest with per-loop trip counts (read from
``"trip_count"`` metadata on header blocks) and per-block static execution
frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import CFG
from .function import Function

#: Trip count assumed for loops whose header carries no metadata, matching
#: the common compiler heuristic for statically unknown loop bounds.
DEFAULT_TRIP_COUNT = 10


@dataclass
class Loop:
    """One natural loop.

    Attributes:
        header: Label of the loop header block.
        body: Labels of all blocks in the loop (header included).
        trip_count: Iterations per entry of the loop, from header metadata.
        parent: Enclosing loop, or None for top-level loops.
        children: Loops directly nested inside this one.
    """

    header: str
    body: set[str] = field(default_factory=set)
    trip_count: int = DEFAULT_TRIP_COUNT
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Nesting depth: 1 for a top-level loop."""
        depth, loop = 0, self
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def contains(self, label: str) -> bool:
        return label in self.body

    def __repr__(self) -> str:
        return f"Loop(header={self.header!r}, blocks={len(self.body)}, trip={self.trip_count})"


@dataclass
class LoopInfo:
    """Loop forest of a function plus frequency queries."""

    function: Function
    cfg: CFG
    loops: list[Loop] = field(default_factory=list)
    _innermost: dict[str, Loop] = field(default_factory=dict)

    @classmethod
    def build(cls, function: Function, cfg: CFG | None = None) -> "LoopInfo":
        if cfg is None:
            cfg = CFG.build(function)
        info = cls(function, cfg)
        info._discover_loops()
        info._nest_loops()
        return info

    # ------------------------------------------------------------------
    def _discover_loops(self) -> None:
        """Find natural loops from back edges; merge loops sharing a header."""
        by_header: dict[str, Loop] = {}
        for tail, head in self.cfg.back_edges():
            body = self._natural_loop_body(tail, head)
            if head in by_header:
                by_header[head].body |= body
            else:
                header_block = self.function.block(head)
                trip = int(header_block.attrs.get("trip_count", DEFAULT_TRIP_COUNT))
                by_header[head] = Loop(header=head, body=body, trip_count=max(1, trip))
        self.loops = list(by_header.values())

    def _natural_loop_body(self, tail: str, head: str) -> set[str]:
        """Blocks reaching *tail* without passing through *head*."""
        body = {head, tail}
        stack = [tail]
        while stack:
            label = stack.pop()
            if label == head:
                continue
            for pred in self.cfg.preds[label]:
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        return body

    def _nest_loops(self) -> None:
        """Build parent/child links: the parent is the smallest strict superset."""
        ordered = sorted(self.loops, key=lambda lp: len(lp.body))
        for i, loop in enumerate(ordered):
            for candidate in ordered[i + 1:]:
                if loop.header in candidate.body and loop is not candidate:
                    loop.parent = candidate
                    candidate.children.append(loop)
                    break
        # Innermost-loop map: smallest loop containing each block wins.
        self._innermost = {}
        for loop in ordered:  # small to large: first write wins
            for label in loop.body:
                self._innermost.setdefault(label, loop)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def innermost_loop(self, label: str) -> Loop | None:
        """Innermost loop containing block *label*, or None."""
        return self._innermost.get(label)

    def enclosing_loops(self, label: str) -> list[Loop]:
        """All loops containing *label*, innermost first."""
        chain = []
        loop = self.innermost_loop(label)
        while loop is not None:
            chain.append(loop)
            loop = loop.parent
        return chain

    def depth(self, label: str) -> int:
        """Loop nesting depth of block *label* (0 outside all loops)."""
        return len(self.enclosing_loops(label))

    def block_frequency(self, label: str) -> float:
        """Static execution frequency of *label*: Eq. 1's trip-count product.

        A block outside all loops has frequency 1; a block inside an
        n-level nest executes ``prod trip_count(i)`` times per function
        invocation.  Branch probabilities are deliberately ignored here —
        the paper's static cost model is trip-count-only; the dynamic
        simulator accounts for branch behaviour instead.
        """
        freq = 1.0
        for loop in self.enclosing_loops(label):
            freq *= loop.trip_count
        return freq

    def top_level(self) -> list[Loop]:
        return [lp for lp in self.loops if lp.parent is None]

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)

"""IR structural verifier.

Checks the invariants the analyses and allocators rely on.  Workload
generators run it on everything they emit; transformation passes (SDG
splitting, spilling) re-verify in tests.
"""

from __future__ import annotations

from .cfg import CFG
from .function import Function, Module
from .instruction import OpKind
from .types import VirtualRegister


class VerificationError(ValueError):
    """Raised when a function violates an IR invariant."""


def verify_function(function: Function, *, require_defs: bool = True) -> None:
    """Verify *function*; raise :class:`VerificationError` on violations.

    Checked invariants:

    - block labels are unique, branch/jump targets exist;
    - terminators appear only as the last instruction of a block;
    - the final block does not fall off the end of the function;
    - loop-header metadata is consistent (``trip_count`` >= 1);
    - when *require_defs* is set, every virtual register used is defined
      on all paths reaching the use (a conservative dominance-free check:
      defined somewhere in the function).
    """
    if not function.blocks:
        raise VerificationError(f"{function.name}: function has no blocks")

    labels = [b.label for b in function.blocks]
    if len(labels) != len(set(labels)):
        raise VerificationError(f"{function.name}: duplicate block labels")
    label_set = set(labels)

    for block in function.blocks:
        for i, instr in enumerate(block.instructions):
            if instr.is_terminator and i != len(block.instructions) - 1:
                raise VerificationError(
                    f"{function.name}/{block.label}: terminator {instr!r} "
                    f"is not the last instruction"
                )
            if instr.kind in (OpKind.BRANCH, OpKind.JUMP):
                target = instr.attrs.get("target")
                if target not in label_set:
                    raise VerificationError(
                        f"{function.name}/{block.label}: branch target "
                        f"{target!r} does not exist"
                    )
        if block.attrs.get("loop_header") and int(block.attrs.get("trip_count", 1)) < 1:
            raise VerificationError(
                f"{function.name}/{block.label}: loop header with trip_count < 1"
            )

    last = function.blocks[-1]
    term = last.terminator
    if term is None or term.kind is OpKind.BRANCH:
        # A missing terminator or a conditional branch in the final block
        # would fall off the end of the function.
        raise VerificationError(
            f"{function.name}/{last.label}: final block falls off the function end"
        )

    if require_defs:
        defined: set[VirtualRegister] = set()
        used: set[VirtualRegister] = set()
        for _, instr in function.instructions():
            defined.update(instr.vreg_defs())
            used.update(instr.vreg_uses())
        undefined = used - defined
        if undefined:
            sample = sorted(undefined, key=lambda r: r.vid)[:5]
            raise VerificationError(
                f"{function.name}: {len(undefined)} vreg(s) used but never "
                f"defined, e.g. {sample}"
            )

    # CFG must be buildable and the entry must reach at least one return.
    cfg = CFG.build(function)
    reachable_rets = any(
        cfg.is_reachable(b.label)
        and b.terminator is not None
        and b.terminator.kind is OpKind.RET
        for b in function.blocks
    )
    if not reachable_rets:
        raise VerificationError(f"{function.name}: no reachable 'ret'")


def verify_module(module: Module, *, require_defs: bool = True) -> None:
    """Verify all functions of *module*."""
    names = [f.name for f in module.functions]
    if len(names) != len(set(names)):
        raise VerificationError(f"{module.name}: duplicate function names")
    for function in module.functions:
        verify_function(function, require_defs=require_defs)

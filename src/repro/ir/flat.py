"""Flat-array IR core: the ``REPRO_FAST`` hot-path representation.

Every phase of the PresCount pipeline conceptually needs the same small
set of facts about a function — which registers each instruction reads
and writes, in which block, at which slot — yet the object-graph API
recomputes them by chasing ``Instruction`` tuples and hashing frozen
dataclasses on every query.  :class:`FlatFunction` lowers a function
once into *interned integer ids* and flat arrays:

* registers are interned to dense ``rid`` ints (``regs[rid]`` raises
  back to the original object, ``reg_names[rid]`` to its printed name —
  the id→name table the observability layers use so listings and audit
  records keep showing ``%v5``, never a bare ``rid``);
* use/def operands are CSR arrays (``use_start``/``use_ids``) indexed by
  instruction ordinal, preserving operand order and duplicates exactly
  as :meth:`Instruction.reg_uses`/``reg_defs`` report them;
* distinct bankable reads get their own CSR (``bank_start``/``bank_ids``)
  mirroring :meth:`Instruction.bankable_reads` dedup order;
* blocks become index ranges over the ordinal sequence plus successor
  index lists mirroring :meth:`BasicBlock.successor_labels`;
* liveness is computed as per-block big-int bitmasks over rids (a
  drop-in for the frozenset dataflow solve — same fixpoint, ~100x less
  allocation).

The mode knob ``REPRO_FAST`` selects the backend:

``auto``
    numpy-backed helpers when numpy imports, pure-python otherwise
    (the default).
``numpy``
    require numpy; raise if it is missing.
``python``
    pure-python ``list``/int-bitmask fallback, never imports numpy.
``off``
    disable the flat core entirely — every pass runs the original
    object-graph implementation (the comparison baseline the perf-smoke
    gate measures against).

Passes resolve the mode **once per run** (an env read per inner-loop
iteration would cost more than it saves) and capture the decision in
the objects they build; outputs are bit-identical across all modes by
construction, and ``repro --selfcheck`` verifies that end to end.

Coverage bitmasks: a slot range ``[start, end)`` maps to the integer
``(1 << end) - (1 << start)``; interval overlap becomes a single ``&``.
Python's arbitrary-precision ints make this exact at any function size.
"""

from __future__ import annotations

import os

from .instruction import OpKind
from .types import VirtualRegister

__all__ = [
    "MODES",
    "FlatFunction",
    "enabled",
    "fast_mode",
    "iter_bits",
    "numpy_or_none",
    "segments_mask",
    "use_numpy",
]

#: Recognized ``REPRO_FAST`` values.
MODES = ("auto", "numpy", "python", "off")

#: Resolution cache keyed by the raw env string, so repeated calls are a
#: dict probe, and tests that flip the env var mid-process still see the
#: new value on the next resolution.
_MODE_CACHE: dict[str, str] = {}

_NUMPY = None  # None = unprobed, module = importable, False = missing


def _probe_numpy():
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy

            _NUMPY = numpy
        except Exception:  # pragma: no cover - numpy is baked in normally
            _NUMPY = False
    return _NUMPY


def fast_mode() -> str:
    """Resolve ``REPRO_FAST`` to ``numpy`` | ``python`` | ``off``."""
    raw = os.environ.get("REPRO_FAST", "auto")
    mode = _MODE_CACHE.get(raw)
    if mode is None:
        value = raw.strip().lower() or "auto"
        if value not in MODES:
            raise ValueError(
                f"REPRO_FAST={raw!r}: expected one of {'|'.join(MODES)}"
            )
        if value == "numpy" and not _probe_numpy():
            raise RuntimeError("REPRO_FAST=numpy but numpy is not importable")
        if value == "auto":
            value = "numpy" if _probe_numpy() else "python"
        mode = _MODE_CACHE[raw] = value
    return mode


def enabled() -> bool:
    """True when the flat core should be used (mode is not ``off``)."""
    return fast_mode() != "off"


def use_numpy() -> bool:
    return fast_mode() == "numpy"


def numpy_or_none():
    """The numpy module when the resolved mode is ``numpy``, else None."""
    return _NUMPY if fast_mode() == "numpy" else None


def iter_bits(mask: int):
    """Yield set bit positions of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask &= mask - 1


def segments_mask(segments) -> int:
    """Coverage bitmask of an iterable of ``Segment``-likes."""
    mask = 0
    for seg in segments:
        mask |= (1 << seg.end) - (1 << seg.start)
    return mask


class FlatFunction:
    """One-shot lowering of a :class:`~repro.ir.function.Function`.

    Instances are immutable snapshots: any mutation of the underlying
    function invalidates them (the :class:`FlatIRAnalysis` wrapper makes
    the analysis manager enforce exactly that).  Instruction identity is
    preserved — ``ordinal_of[id(instr)]`` stays valid while the same
    ``Instruction`` objects live, even if blocks are reordered, which is
    what lets the scheduler reuse one lowering across block permutations.
    """

    __slots__ = (
        "function",
        "regs",
        "reg_ids",
        "reg_names",
        "reg_virtual",
        "instrs",
        "ordinal_of",
        "kinds",
        "inst_block",
        "use_start",
        "use_ids",
        "def_start",
        "def_ids",
        "bank_start",
        "bank_ids",
        "block_labels",
        "block_index",
        "block_bounds",
        "block_succ",
        "num_slots",
        "_live",
        "_uses_of",
    )

    def __init__(self, function):
        self.function = function
        regs: list = []
        reg_ids: dict = {}
        reg_names: list[str] = []
        reg_virtual: list[bool] = []
        instrs: list = []
        ordinal_of: dict[int, int] = {}
        kinds: list = []
        inst_block: list[int] = []
        use_start = [0]
        use_ids: list[int] = []
        def_start = [0]
        def_ids: list[int] = []
        bank_start = [0]
        bank_ids: list[int] = []
        block_labels: list[str] = []
        block_index: dict[str, int] = {}
        block_bounds: list[tuple[int, int]] = []

        def intern(reg) -> int:
            rid = reg_ids.get(reg)
            if rid is None:
                rid = len(regs)
                reg_ids[reg] = rid
                regs.append(reg)
                reg_names.append(reg.name)
                reg_virtual.append(isinstance(reg, VirtualRegister))
            return rid

        for bi, block in enumerate(function.blocks):
            block_index[block.label] = bi
            block_labels.append(block.label)
            start = len(instrs)
            for instr in block.instructions:
                ordinal_of[id(instr)] = len(instrs)
                instrs.append(instr)
                kinds.append(instr.kind)
                inst_block.append(bi)
                bank_seen: set[int] = set()
                for use in instr.reg_uses():
                    rid = intern(use)
                    use_ids.append(rid)
                    if use.regclass.bankable and rid not in bank_seen:
                        bank_seen.add(rid)
                        bank_ids.append(rid)
                for dreg in instr.reg_defs():
                    def_ids.append(intern(dreg))
                use_start.append(len(use_ids))
                def_start.append(len(def_ids))
                bank_start.append(len(bank_ids))
            block_bounds.append((start, len(instrs)))

        # Successor block indices, mirroring BasicBlock.successor_labels
        # (fall-through to the next block in layout order).
        block_succ: list[list[int]] = []
        for bi, block in enumerate(function.blocks):
            next_label = (
                block_labels[bi + 1] if bi + 1 < len(block_labels) else None
            )
            succs = []
            for label in block.successor_labels(next_label):
                target = block_index.get(label)
                if target is not None:
                    succs.append(target)
            block_succ.append(succs)

        self.regs = regs
        self.reg_ids = reg_ids
        self.reg_names = reg_names
        self.reg_virtual = reg_virtual
        self.instrs = instrs
        self.ordinal_of = ordinal_of
        self.kinds = kinds
        self.inst_block = inst_block
        self.use_start = use_start
        self.use_ids = use_ids
        self.def_start = def_start
        self.def_ids = def_ids
        self.bank_start = bank_start
        self.bank_ids = bank_ids
        self.block_labels = block_labels
        self.block_index = block_index
        self.block_bounds = block_bounds
        self.block_succ = block_succ
        self.num_slots = 2 * len(instrs)
        self._live = None
        self._uses_of = None

    # ------------------------------------------------------------------
    @property
    def num_regs(self) -> int:
        return len(self.regs)

    def name_of(self, rid: int) -> str:
        """Original printed name of an interned register id.

        The raising shim for anything user-facing: profiler listings and
        audit records must render ``%v5``/``$fp3``, never a bare rid.
        """
        return self.reg_names[rid]

    def bank_reads(self, ordinal: int, regclass=None) -> list[int]:
        """Distinct bankable-read rids of one instruction, operand order.

        With *regclass* the list is filtered to that class — dedup before
        filter equals :meth:`Instruction.bankable_reads`' filter-before-
        dedup because dedup keeps first occurrences either way.
        """
        ids = self.bank_ids[self.bank_start[ordinal]: self.bank_start[ordinal + 1]]
        if regclass is None:
            return ids
        regs = self.regs
        return [rid for rid in ids if regs[rid].regclass == regclass]

    # ------------------------------------------------------------------
    def liveness_masks(self):
        """Per-block ``(gen, kill, live_in, live_out)`` rid bitmasks.

        The same backward dataflow fixpoint as
        :meth:`repro.analysis.liveness.Liveness.build`, over int
        bitmasks instead of frozensets; cached after the first call.
        """
        if self._live is None:
            nblocks = len(self.block_labels)
            gen = [0] * nblocks
            kill = [0] * nblocks
            use_start, use_ids = self.use_start, self.use_ids
            def_start, def_ids = self.def_start, self.def_ids
            for b in range(nblocks):
                start, end = self.block_bounds[b]
                g = 0
                k = 0
                for i in range(start, end):
                    for j in range(use_start[i], use_start[i + 1]):
                        bit = 1 << use_ids[j]
                        if not k & bit:
                            g |= bit
                    for j in range(def_start[i], def_start[i + 1]):
                        k |= 1 << def_ids[j]
                gen[b] = g
                kill[b] = k
            live_in = [0] * nblocks
            live_out = [0] * nblocks
            succs = self.block_succ
            changed = True
            while changed:
                changed = False
                for b in range(nblocks - 1, -1, -1):
                    out = 0
                    for s in succs[b]:
                        out |= live_in[s]
                    new_in = gen[b] | (out & ~kill[b])
                    if out != live_out[b] or new_in != live_in[b]:
                        live_out[b] = out
                        live_in[b] = new_in
                        changed = True
            self._live = (gen, kill, live_in, live_out)
        return self._live

    # ------------------------------------------------------------------
    def uses_of_reg(self) -> list[list[int]]:
        """rid -> ordinals of instructions that use *or* define it.

        Built lazily; the coalescer uses it to rewrite only the
        instructions a merge actually touches.
        """
        if self._uses_of is None:
            touched: list[list[int]] = [[] for _ in self.regs]
            use_start, use_ids = self.use_start, self.use_ids
            def_start, def_ids = self.def_start, self.def_ids
            for i in range(len(self.instrs)):
                last = -1
                for j in range(use_start[i], use_start[i + 1]):
                    rid = use_ids[j]
                    if rid != last:
                        lst = touched[rid]
                        if not lst or lst[-1] != i:
                            lst.append(i)
                    last = rid
                for j in range(def_start[i], def_start[i + 1]):
                    lst = touched[def_ids[j]]
                    if not lst or lst[-1] != i:
                        lst.append(i)
            self._uses_of = touched
        return self._uses_of

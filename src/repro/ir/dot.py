"""Graphviz DOT export for the CFG and the analysis graphs.

No rendering dependency: these functions emit DOT text; pipe it to
``dot -Tsvg`` locally when a picture is wanted.  Used by examples and
handy when debugging coloring decisions (`--- why did v7 land in bank 1?`
is much easier to answer while looking at the RCG).
"""

from __future__ import annotations

from .function import Function


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def cfg_to_dot(function: Function, *, include_instructions: bool = False) -> str:
    """The function's CFG; optionally with instruction listings per node."""
    from .cfg import CFG

    cfg = CFG.build(function)
    lines = [f'digraph "{_escape(function.name)}" {{', "  node [shape=box fontname=monospace];"]
    for block in function.blocks:
        if include_instructions:
            body = "\\l".join(_escape(repr(i)) for i in block.instructions)
            label = f"{block.label}\\l{body}\\l"
        else:
            extra = ""
            if block.attrs.get("loop_header"):
                extra = f" (loop x{block.attrs.get('trip_count', '?')})"
            label = f"{block.label}{extra}"
        lines.append(f'  "{block.label}" [label="{label}"];')
    for block in function.blocks:
        for succ in block.successor_labels(function.next_label(block)):
            lines.append(f'  "{block.label}" -> "{succ}";')
    lines.append("}")
    return "\n".join(lines)


def interference_to_dot(graph, *, colors: dict | None = None) -> str:
    """An undirected interference/conflict graph; optional color map
    (e.g. a bank assignment) fills the nodes."""
    palette = ("lightblue", "lightsalmon", "palegreen", "plum",
               "khaki", "lightgray", "pink", "aquamarine")
    lines = ["graph interference {", "  node [style=filled fontname=monospace];"]
    for node in sorted(graph.adjacency, key=lambda r: r.vid):
        fill = "white"
        if colors and node in colors:
            fill = palette[colors[node] % len(palette)]
        lines.append(f'  "{node!r}" [fillcolor={fill}];')
    seen = set()
    for node, neighbors in graph.adjacency.items():
        for other in neighbors:
            key = frozenset((node, other))
            if key in seen:
                continue
            seen.add(key)
            lines.append(f'  "{node!r}" -- "{other!r}";')
    # Soft edges (bundle extension), dashed.
    for key in getattr(graph, "soft_edge_cost", {}):
        a, b = tuple(key)
        lines.append(f'  "{a!r}" -- "{b!r}" [style=dashed];')
    lines.append("}")
    return "\n".join(lines)


def sdg_to_dot(sdg) -> str:
    """The Same Displacement Graph (directed: input -> output)."""
    lines = ["digraph sdg {", "  node [fontname=monospace];"]
    for node in sorted(sdg.out_edges, key=lambda r: r.vid):
        lines.append(f'  "{node!r}";')
    for src, dsts in sdg.out_edges.items():
        for dst in dsts:
            lines.append(f'  "{src!r}" -> "{dst!r}";')
    lines.append("}")
    return "\n".join(lines)

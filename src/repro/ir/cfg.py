"""Control-flow graph, reverse postorder, and dominators.

The CFG is derived, not stored: edges come from terminator targets plus
layout fall-through.  Dominators use the Cooper–Harvey–Kennedy iterative
algorithm over reverse postorder, which is plenty fast for the function
sizes generated in this reproduction (tens to a few hundred blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .block import BasicBlock
from .function import Function


@dataclass
class CFG:
    """Control-flow graph of one function.

    Attributes:
        function: The analyzed function.
        succs: label -> successor labels (in branch order).
        preds: label -> predecessor labels (in layout order).
        rpo: Block labels in reverse postorder from the entry.  Blocks
            unreachable from the entry are excluded from ``rpo`` (and from
            dominator queries) but remain in ``succs``/``preds``.
    """

    function: Function
    succs: dict[str, list[str]] = field(default_factory=dict)
    preds: dict[str, list[str]] = field(default_factory=dict)
    rpo: list[str] = field(default_factory=list)
    _idom: dict[str, str] = field(default_factory=dict)
    _rpo_index: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(cls, function: Function) -> "CFG":
        cfg = cls(function)
        cfg.succs = {b.label: [] for b in function.blocks}
        cfg.preds = {b.label: [] for b in function.blocks}
        for block in function.blocks:
            for succ in block.successor_labels(function.next_label(block)):
                cfg.succs[block.label].append(succ)
                cfg.preds[succ].append(block.label)
        cfg._compute_rpo()
        cfg._compute_dominators()
        return cfg

    # ------------------------------------------------------------------
    def _compute_rpo(self) -> None:
        if not self.function.blocks:
            return
        entry = self.function.entry.label
        visited: set[str] = set()
        postorder: list[str] = []
        # Iterative DFS to avoid recursion limits on deep loop nests.
        stack: list[tuple[str, int]] = [(entry, 0)]
        visited.add(entry)
        while stack:
            label, child_idx = stack[-1]
            children = self.succs[label]
            if child_idx < len(children):
                stack[-1] = (label, child_idx + 1)
                child = children[child_idx]
                if child not in visited:
                    visited.add(child)
                    stack.append((child, 0))
            else:
                postorder.append(label)
                stack.pop()
        self.rpo = list(reversed(postorder))
        self._rpo_index = {label: i for i, label in enumerate(self.rpo)}

    def _compute_dominators(self) -> None:
        """Cooper–Harvey–Kennedy iterative dominator computation."""
        if not self.rpo:
            return
        entry = self.rpo[0]
        idom: dict[str, str] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for label in self.rpo[1:]:
                new_idom: str | None = None
                for pred in self.preds[label]:
                    if pred not in idom:
                        continue  # not yet processed / unreachable
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, idom)
                if new_idom is not None and idom.get(label) != new_idom:
                    idom[label] = new_idom
                    changed = True
        self._idom = idom

    def _intersect(self, a: str, b: str, idom: dict[str, str]) -> str:
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_reachable(self, label: str) -> bool:
        return label in self._rpo_index

    def dominates(self, a: str, b: str) -> bool:
        """True when block *a* dominates block *b* (reflexive)."""
        if not self.is_reachable(a) or not self.is_reachable(b):
            return False
        entry = self.rpo[0]
        node = b
        while True:
            if node == a:
                return True
            if node == entry:
                return a == entry
            node = self._idom[node]

    def immediate_dominator(self, label: str) -> str | None:
        """Immediate dominator of *label*, or None for the entry."""
        if label == self.rpo[0]:
            return None
        return self._idom.get(label)

    def back_edges(self) -> list[tuple[str, str]]:
        """All (tail, head) edges where head dominates tail.

        These are exactly the back edges of natural loops; irreducible
        control flow (which our builders never create) would surface as
        retreating edges whose head does not dominate the tail and is
        rejected by :mod:`repro.ir.loops`.
        """
        edges = []
        for tail, heads in self.succs.items():
            if not self.is_reachable(tail):
                continue
            for head in heads:
                if self.dominates(head, tail):
                    edges.append((tail, head))
        return edges

    def block(self, label: str) -> BasicBlock:
        return self.function.block(label)

"""Machine functions: an ordered list of basic blocks plus a vreg factory.

Block order is the *layout order*: fall-through edges follow it, and the
slot indexer numbers instructions in it.  Analyses that need a CFG build
one on demand from :mod:`repro.ir.cfg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .block import BasicBlock
from .instruction import Instruction
from .types import RegClass, VirtualRegister, VRegFactory


@dataclass
class Function:
    """A machine function.

    Attributes:
        name: Function name (unique within a module).
        blocks: Basic blocks in layout order; ``blocks[0]`` is the entry.
        vregs: Factory for fresh virtual registers.
        attrs: Metadata (e.g. the generating workload's parameters).
    """

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    vregs: VRegFactory = field(default_factory=VRegFactory)
    attrs: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    def add_block(self, label: str) -> BasicBlock:
        """Create and append a new block with *label* (must be unique)."""
        if any(b.label == label for b in self.blocks):
            raise ValueError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label)
        self.blocks.append(block)
        return block

    def block(self, label: str) -> BasicBlock:
        """Look up a block by label."""
        for b in self.blocks:
            if b.label == label:
                return b
        raise KeyError(f"no block {label!r} in function {self.name}")

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def next_label(self, block: BasicBlock) -> str | None:
        """Label of the block following *block* in layout order."""
        idx = self.blocks.index(block)
        if idx + 1 < len(self.blocks):
            return self.blocks[idx + 1].label
        return None

    def successors(self, block: BasicBlock) -> list[BasicBlock]:
        return [self.block(lbl) for lbl in block.successor_labels(self.next_label(block))]

    # ------------------------------------------------------------------
    # Instruction / register iteration
    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[tuple[BasicBlock, Instruction]]:
        """Iterate all instructions in layout order with their block."""
        for block in self.blocks:
            for instr in block:
                yield block, instr

    def virtual_registers(self, regclass: RegClass | None = None) -> list[VirtualRegister]:
        """All virtual registers referenced, in first-appearance order."""
        seen: dict[VirtualRegister, None] = {}
        for _, instr in self.instructions():
            for reg in instr.regs():
                if isinstance(reg, VirtualRegister):
                    if regclass is None or reg.regclass == regclass:
                        seen.setdefault(reg)
        return list(seen)

    def new_vreg(self, regclass: RegClass | None = None) -> VirtualRegister:
        """Create a fresh virtual register via the function's factory."""
        if regclass is None:
            return self.vregs.make()
        return self.vregs.make(regclass)

    def rewrite_registers(self, mapping: dict) -> None:
        """Destructively substitute registers through *mapping* everywhere."""
        for block in self.blocks:
            block.instructions = [i.rewrite(mapping) for i in block.instructions]

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def clone(self) -> "Function":
        """Deep copy, so destructive passes (allocation, splitting) can run
        repeatedly on the same source function.

        With the flat core active a structural copy rebuilds blocks and
        instructions while *sharing* the immutable operand values
        (registers, immediates) and shallow-copying attribute dicts —
        attrs values are immutable by convention (see
        :meth:`~repro.ir.instruction.Instruction.rewrite`), so this is
        observationally identical to ``copy.deepcopy`` at a fraction of
        the cost.  ``REPRO_FAST=off`` keeps the original deepcopy.
        """
        from .flat import enabled as _fast_enabled

        if not _fast_enabled():
            import copy as _copy

            return _copy.deepcopy(self)
        factory = VRegFactory(self.vregs.next_vid, dict(self.vregs._by_id))
        blocks = [
            BasicBlock(
                block.label,
                [
                    Instruction(i.opcode, i.kind, i.defs, i.uses, dict(i.attrs))
                    for i in block.instructions
                ],
                dict(block.attrs),
            )
            for block in self.blocks
        ]
        return Function(self.name, blocks, factory, dict(self.attrs))

    def __repr__(self) -> str:
        return (
            f"Function({self.name!r}, {len(self.blocks)} blocks, "
            f"{self.instruction_count()} instrs)"
        )


@dataclass
class Module:
    """A compilation module: a named collection of functions.

    Mirrors the paper's "Mods" granularity in Table I; suites are built as
    lists of modules.
    """

    name: str
    functions: list[Function] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)

    def add(self, function: Function) -> Function:
        self.functions.append(function)
        return function

    def function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r} in module {self.name}")

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions)

    def __len__(self) -> int:
        return len(self.functions)

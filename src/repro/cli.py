"""Command-line interface: regenerate the paper's evaluation from a shell.

Usage::

    python -m repro table II                # one table (I..VII)
    python -m repro figure 10               # one figure (1, 10, 11)
    python -m repro all                     # everything
    python -m repro compare                 # paper-vs-measured shapes
    python -m repro suite SPECfp --scale 0.02   # inspect a suite
    python -m repro allocate --method bpc --banks 2 --registers 32  # demo
    python -m repro --jobs 4 all            # fan programs over 4 processes
    python -m repro --pass-stats table II   # + pass/cache statistics
    python -m repro --trace out.json table II    # Chrome-trace the run
    python -m repro --metrics out.json table II  # machine-readable metrics
    python -m repro --explain v5 allocate        # why did v5 land there?
    python -m repro --profile - table VII        # conflict hotspot table
    python -m repro bench record                 # benchmark history record
    python -m repro bench diff OLD.json NEW.json # regression gate (CI)
    python -m repro measure --machine ooo        # OoO width/port sweep
    python -m repro measure --machine ooo --issue-width 1 --read-ports 1 \
        --no-rename --out deg.json               # degenerate parity dump
    python -m repro serve --port 8377            # allocation service
    python -m repro serve --shards 3             # sharded worker fleet
    python -m repro serve --journal DIR          # crash-durable job queue
    python -m repro request --deadline-ms 50     # client for `serve`
    python -m repro request --job-id j000002     # pre-restart job status
    python -m repro loadgen --rolling-restart    # zero-goodput-loss proof
    python -m repro loadgen --requests 200       # seeded traffic harness
    python -m repro loadgen --server URL --record DIR  # + history record
    python -m repro verify ART.json --ir k.ir    # re-check an artifact
    python -m repro --faults plan.json serve     # chaos-test the service
    python -m repro trace fetch TRACE_ID --server URL  # merged Chrome trace
    python -m repro top --server URL             # live SLO/fleet view

Scale options apply to every subcommand touching suites; defaults are the
test-sized scales (fast).  The benches under ``benchmarks/`` use larger
calibrated defaults.
"""

from __future__ import annotations

import argparse
import os
import sys

from .experiments import ALL_FIGURES, ALL_TABLES, ExperimentContext
from .sim import count_conflict_relevant


def _resolve_cli_jobs(args: argparse.Namespace) -> int:
    """``--jobs`` wins, then ``REPRO_JOBS``, then every CPU."""
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        return max(1, jobs)
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _build_context(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        spec_scale=args.spec_scale,
        cnn_scale=args.cnn_scale,
        idft_points=args.idft_points,
        seed=args.seed,
        jobs=_resolve_cli_jobs(args),
    )


def _cmd_table(args: argparse.Namespace) -> int:
    name = args.name.upper()
    if name not in ALL_TABLES:
        print(f"unknown table {args.name!r}; available: {', '.join(ALL_TABLES)}")
        return 2
    ctx = _build_context(args)
    print(ALL_TABLES[name](ctx).render())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name not in ALL_FIGURES:
        print(f"unknown figure {args.name!r}; available: {', '.join(ALL_FIGURES)}")
        return 2
    ctx = _build_context(args)
    print(ALL_FIGURES[args.name](ctx).render())
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    ctx = _build_context(args)
    for name, builder in ALL_TABLES.items():
        print(builder(ctx).render())
        print()
    for name, builder in ALL_FIGURES.items():
        print(builder(ctx).render())
        print()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .experiments import compare

    ctx = _build_context(args)
    report = compare(ctx)
    print(report.render())
    return 0 if report.all_hold else 1


def _cmd_suite(args: argparse.Namespace) -> int:
    ctx = _build_context(args)
    suite = ctx.suite(args.name)
    print(f"suite {suite.name}: {len(suite)} programs")
    for program in suite.programs:
        functions = program.functions()
        reles = sum(count_conflict_relevant(f) for f in functions)
        instrs = sum(f.instruction_count() for f in functions)
        print(
            f"  {program.name:<24} category={program.category:<14} "
            f"fns={len(functions):<5} instrs={instrs:<7} reles={reles}"
        )
    return 0


def _demo_kernel(trip_count: int):
    """The demo kernel `repro allocate` and `repro request` share."""
    from .ir import IRBuilder

    b = IRBuilder("demo")
    xs = [b.const(float(i + 1)) for i in range(4)]
    acc = b.const(0.0)
    with b.loop(trip_count=trip_count):
        for i in range(len(xs) - 1):
            product = b.arith("fmul", xs[i], xs[i + 1])
            b.arith_into(acc, "fadd", acc, product)
    b.ret(acc)
    return b.finish()


def _cmd_allocate(args: argparse.Namespace) -> int:
    """Allocate a demo kernel (or ``--ir`` text) and print statistics."""
    from .banks import BankedRegisterFile
    from .ir import print_function
    from .prescount import PipelineConfig, run_pipeline
    from .sim import analyze_static

    if args.ir:
        return _allocate_ir(args)
    fn = _demo_kernel(args.trip_count)
    register_file = BankedRegisterFile(args.registers, args.banks)
    result = run_pipeline(fn, PipelineConfig(register_file, args.method))
    stats = analyze_static(result.function, register_file)
    print(f"; method={args.method} file={register_file.describe()}")
    from . import obs

    if obs.PROFILE.enabled:
        # Attribute the demo kernel's expected conflicts, then print the
        # listing annotated with per-site stall cycles.
        from .sim import estimate_dynamic_conflicts

        estimate_dynamic_conflicts(result.function, register_file)
        print(obs.PROFILE.annotate(result.function))
    else:
        print(print_function(result.function))
    print(
        f"; static bank conflicts: {stats.bank_conflicts}   "
        f"spills: {result.spill_count}   copies: {result.copies_inserted}"
    )
    if args.out:
        # Same schema (and content address) the service cache stores, so
        # CLI output and service responses are byte-for-byte diffable.
        from .service import artifact_bytes, build_artifact

        artifact = build_artifact(
            fn,
            {"registers": args.registers, "banks": args.banks},
            args.method,
        )
        with open(args.out, "wb") as fh:
            fh.write(artifact_bytes(artifact))
        print(f"; wrote artifact {artifact['key'][:12]}… to {args.out}")
    return 0


def _allocate_ir(args: argparse.Namespace) -> int:
    """``repro allocate --ir FILE``: allocate submitted IR text.

    Multi-function text takes the module path; with ``--incremental``
    fragments are reused from the store (``--store DIR`` persists it
    across invocations), so re-allocating a module where K of N
    functions changed re-runs only those K.
    """
    import json

    from .service import (
        IncrementalAllocator,
        RequestError,
        artifact_bytes,
        build_artifact,
        build_module_artifact,
        is_module_text,
    )

    if args.ir == "-":
        text = sys.stdin.read()
    else:
        with open(args.ir, encoding="utf-8") as fh:
            text = fh.read()
    spec = {"registers": args.registers, "banks": args.banks}
    counters = None
    try:
        if is_module_text(text):
            if args.incremental:
                allocator = IncrementalAllocator(args.store)
                artifact = allocator.allocate(text, spec, args.method)
                counters = allocator.counters
            else:
                artifact = build_module_artifact(text, spec, args.method)
        else:
            artifact = build_artifact(text, spec, args.method)
    except RequestError as exc:
        print(f"allocate: {exc}", file=sys.stderr)
        return 2
    data = artifact_bytes(artifact)
    summary = {
        "key": artifact["key"],
        "method": artifact["method"],
        "stats": artifact["stats"],
    }
    if "functions" in artifact:
        summary["functions"] = len(artifact["functions"])
    if counters is not None:
        summary["incremental"] = dict(counters)
    print(json.dumps(summary, sort_keys=True))
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(data)
        print(f"; wrote artifact {artifact['key'][:12]}… to {args.out}")
    return 0


def _cmd_selfcheck() -> int:
    """Run the flat-vs-object bit-identity self-check; 0 iff identical."""
    from .selfcheck import SelfCheckError, run_selfcheck

    try:
        summary = run_selfcheck()
    except SelfCheckError as exc:
        print(f"selfcheck: FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"selfcheck: ok (flat mode {summary['mode']}, methods "
        f"{', '.join(summary['methods'])})",
        file=sys.stderr,
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Independently re-check an allocation artifact file."""
    from .resilience import AllocationVerifier

    try:
        with open(args.artifact, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        print(f"verify: cannot read {args.artifact!r}: {exc}", file=sys.stderr)
        return 2
    original_ir = None
    if args.ir:
        if args.ir == "-":
            original_ir = sys.stdin.read()
        else:
            with open(args.ir, encoding="utf-8") as fh:
                original_ir = fh.read()
    verifier = AllocationVerifier("strict")
    report = verifier.verify_bytes(data, original_ir=original_ir)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the allocation service until interrupted."""
    from .obs.telemetry import EVENTS, TELEMETRY
    from .selfcheck import SelfCheckError, run_selfcheck
    from .service import (
        ServiceConfig,
        make_server,
        make_shard_server,
        shutdown_server,
        shutdown_shard_server,
    )
    from .service.server import ServiceHandler

    # Boot-time self-check: never serve from a flat path that diverges
    # from the object-graph baseline.
    try:
        summary = run_selfcheck()
    except SelfCheckError as exc:
        print(f"selfcheck failed; refusing to serve: {exc}", file=sys.stderr)
        return 1
    print(f"selfcheck ok (flat mode {summary['mode']})", flush=True)

    # Fleet telemetry is on by default for `serve` (spans cost nothing
    # until a request carries a trace; artifacts are unaffected).  The
    # env vars make spawned shard workers arm themselves too.
    if not args.no_telemetry:
        TELEMETRY.enable(
            process="frontend" if args.shards > 0 else "service"
        )
        os.environ["REPRO_TELEMETRY"] = "1"
    if args.events:
        EVENTS.enable(args.events)
        os.environ["REPRO_EVENTS"] = args.events

    config = ServiceConfig(
        workers=args.workers,
        batch_size=args.batch_size,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff_ms / 1000.0,
        cache_dir=args.cache_dir,
        verify=args.verify,
        job_retries=args.job_retries,
        job_retention=args.retention,
        max_queue_depth=args.max_queue_depth,
        journal_dir=args.journal,
    )
    if args.verbose:
        ServiceHandler.verbose = True
    if args.shards > 0:
        server = make_shard_server(
            args.host, args.port, shards=args.shards, config=config
        )
        shutdown = shutdown_shard_server
        what = f"repro shard service ({args.shards} workers)"
    else:
        server = make_server(args.host, args.port, config)
        shutdown = shutdown_server
        what = "repro service"

    # SIGTERM means *graceful*: stop accepting, let in-flight jobs
    # finish, sync the journal, then exit.  (SIGKILL is the crash the
    # journal exists for — recovery replays on the next boot.)  Shard
    # workers install their own in-process handler; the frontend only
    # needs to stop serving, router.close() SIGTERMs each worker.
    import signal
    import threading

    def _graceful(signum, frame):  # noqa: ARG001 - signal signature
        def _drain_and_stop():
            service = getattr(server, "service", None)
            if service is not None:
                service.drain_wait(timeout=10.0)
            server.shutdown()

        threading.Thread(target=_drain_and_stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)

    host, port = server.server_address[:2]
    print(f"{what} listening on http://{host}:{port}", flush=True)
    if TELEMETRY.enabled:
        print(
            "telemetry on: GET /v1/metrics (Prometheus), "
            "GET /v1/trace/<trace_id> (merged spans)",
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        shutdown(server)
    return 0


def _parse_phases(raw: list[str] | None) -> tuple:
    """``DUR:RPS`` strings → the loadgen phase tuple."""
    if not raw:
        return ((0.5, 80.0), (0.5, 240.0))
    phases = []
    for text in raw:
        try:
            duration, rps = text.split(":", 1)
            phases.append((float(duration), float(rps)))
        except ValueError:
            raise SystemExit(
                f"loadgen: bad --phase {text!r}; expected DURATION:RPS"
            )
    return tuple(phases)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Replay a seeded open-loop traffic scenario; optionally record it."""
    import json

    from .service import ServiceConfig
    from .service.loadgen import (
        HttpTarget,
        LoadgenConfig,
        RouterTarget,
        loadgen_record,
        run_loadgen,
    )

    if not args.no_telemetry:
        # Root trace contexts per arrival; against a telemetry-enabled
        # server the report's trace_ids are fetchable via `repro trace
        # fetch`, in direct mode the spans are recorded right here.
        from .obs.telemetry import TELEMETRY

        TELEMETRY.enable(process="loadgen")

    config = LoadgenConfig(
        seed=args.seed,
        requests=args.requests,
        pool=args.pool,
        zipf_s=args.zipf_s,
        phases=_parse_phases(args.phase),
        deadline_frac=args.deadline_frac,
        deadline_choices_ms=tuple(args.deadline_ms or (5.0, 20.0, 100.0)),
        method=args.method,
        registers=args.registers,
        banks=args.banks,
        sample=args.sample,
        timeout_s=args.timeout,
    )
    router = None
    restart_thread = None
    restart_report: dict = {}
    if args.server:
        if args.rolling_restart:
            raise SystemExit(
                "loadgen: --rolling-restart needs the in-process fleet "
                "(drop --server); restart HTTP fleets via POST "
                "/v1/admin/drain per shard"
            )
        from .service.client import ServiceClient

        target = HttpTarget(ServiceClient(args.server, timeout=args.timeout))
    else:
        from .service import LocalShard, ShardRouter
        from .service.shard import shard_cache_dir

        shards = [
            LocalShard(
                f"s{i}",
                ServiceConfig(
                    cache_dir=shard_cache_dir(args.cache_dir, f"s{i}"),
                    journal_dir=shard_cache_dir(args.journal, f"s{i}"),
                ),
            )
            for i in range(max(1, args.shards))
        ]
        router = ShardRouter(shards)
        target = RouterTarget(router)
        if args.rolling_restart:
            # Fire drain→restart→rejoin across the fleet mid-run: start
            # about halfway through the arrival schedule so requests
            # land on draining and freshly-recovered shards alike.
            import threading
            import time

            from .service.loadgen import build_schedule

            delay_s = build_schedule(config)[-1].at_s / 2.0

            def _restart():
                time.sleep(delay_s)
                restart_report.update(router.rolling_restart())

            restart_thread = threading.Thread(target=_restart, daemon=True)
            restart_thread.start()
    try:
        report = run_loadgen(target, config)
        if restart_thread is not None:
            restart_thread.join(timeout=60.0)
            report["rolling_restart"] = restart_report
    finally:
        if router is not None:
            router.close()
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.record:
        from .experiments import write_record

        record = loadgen_record(report, config, label=args.label)
        path = write_record(record, args.record, prefix="LOADGEN")
        print(f"recorded loadgen history to {path}", file=sys.stderr)
    ok = (
        report["failed"] == 0
        and report["verify_failed"] == 0
        and report["samples"]["mismatched"] == 0
    )
    return 0 if ok else 1


def _cmd_trace_fetch(args: argparse.Namespace) -> int:
    """Fetch one merged distributed trace and write Chrome-trace JSON."""
    import json

    from .obs.telemetry import chrome_trace
    from .service import ServiceError
    from .service.client import ServiceClient

    client = ServiceClient(args.server, timeout=args.timeout)
    try:
        payload = client.trace(args.trace_id)
    except ServiceError as exc:
        print(f"trace fetch: {exc}", file=sys.stderr)
        return 1
    spans = payload.get("spans") or []
    if not spans:
        print(
            f"trace fetch: no spans for {args.trace_id!r} (telemetry off, "
            "trace evicted, or wrong id)",
            file=sys.stderr,
        )
        return 1
    doc = chrome_trace(payload)
    out = args.out or f"trace-{args.trace_id}.json"
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    procs = sorted({span.get("proc") or "?" for span in spans})
    print(
        f"wrote {len(spans)} spans across {len(procs)} processes "
        f"({', '.join(procs)}) to {out} "
        "(open in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def _render_top(stats: dict) -> str:
    """One ``repro top`` frame from a ``/v1/stats`` payload."""
    import time as _time

    lines = [
        f"repro top @ {_time.strftime('%H:%M:%S')}   "
        f"queue_depth={stats.get('queue_depth', 0)}"
    ]
    counters = stats.get("counters") or {}
    if counters:
        lines.append(
            "  counters: "
            + "  ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        )
    router = stats.get("router") or {}
    slo = stats.get("slo") or router.get("slo")
    if slo:
        latency = slo.get("latency_ms") or {}
        budget = slo.get("error_budget") or {}
        meets = slo.get("meets") or {}
        met = "+".join(k for k, ok in sorted(meets.items()) if ok) or "none"
        lines.append(
            f"  slo: requests={slo.get('requests')} "
            f"availability={slo.get('availability')} "
            f"goodput={slo.get('goodput_ratio')} "
            f"p99_ms={latency.get('p99')} "
            f"budget_burn={budget.get('burn')} meets={met}"
        )
    if router:
        routed = router.get("routed") or {}
        meta = router.get("shards") or {}
        breakers = router.get("breakers") or {}
        for name in sorted(set(routed) | set(meta)):
            shard_meta = meta.get(name) or {}
            lines.append(
                f"  shard {name}: routed={routed.get(name, 0)} "
                f"uptime_s={shard_meta.get('uptime_s')} "
                f"last_health={shard_meta.get('last_health_check')} "
                f"breaker={breakers.get(name)}"
            )
    shards = stats.get("shards")
    if isinstance(shards, dict):
        for name, shard_stats in sorted(shards.items()):
            if not isinstance(shard_stats, dict):
                continue
            inner = shard_stats.get("counters") or {}
            lines.append(
                f"    {name}: requests={inner.get('requests', 0)} "
                f"cache_hits={inner.get('cache_hits', 0)} "
                f"depth={shard_stats.get('queue_depth', 0)}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view over ``/v1/stats`` (``--once`` for scripts)."""
    import time as _time

    from .service import ServiceError
    from .service.client import ServiceClient

    client = ServiceClient(args.server, timeout=args.timeout)
    try:
        while True:
            try:
                stats = client.stats()
            except ServiceError as exc:
                print(f"top: {exc}", file=sys.stderr)
                return 1
            frame = _render_top(stats)
            if not args.once:
                # Clear screen + home, like watch(1).
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            if args.once:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_request(args: argparse.Namespace) -> int:
    """Submit one allocation request to a running service."""
    import json

    from .ir import print_function
    from .service import ServiceError
    from .service.client import ServiceClient

    if args.job_id:
        # Query a prior job instead of resubmitting — the durable-queue
        # path after a crash or restart: journal recovery re-registers
        # the job (or its terminal tombstone) under the same id.
        client = ServiceClient(
            args.server, timeout=args.timeout, retries=args.retries
        )
        try:
            status = client.poll(args.job_id)
        except ServiceError as exc:
            print(f"request failed: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(status, sort_keys=True))
        if status.get("status") != "done":
            return 1
        if args.out:
            try:
                data = client.result(args.job_id)
            except ServiceError as exc:
                print(f"request failed: {exc}", file=sys.stderr)
                return 1
            with open(args.out, "wb") as fh:
                fh.write(data)
        return 0

    if args.ir == "-":
        ir = sys.stdin.read()
    elif args.ir:
        with open(args.ir, encoding="utf-8") as fh:
            ir = fh.read()
    else:
        ir = print_function(_demo_kernel(args.trip_count))

    client = ServiceClient(
        args.server, timeout=args.timeout, retries=args.retries
    )
    try:
        status = client.submit(
            ir,
            registers=args.registers,
            banks=args.banks,
            subgroups=args.subgroups,
            method=args.method,
            deadline_ms=args.deadline_ms,
        )
        status = client.wait(status["job_id"], timeout=args.timeout)
        if status["status"] == "failed":
            print(json.dumps(status, sort_keys=True))
            return 1
        data = client.result(status["job_id"])
    except ServiceError as exc:
        print(f"request failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(data)
    artifact = json.loads(data)
    summary = {
        "job_id": status["job_id"],
        "cache": status["cache"],
        "requested_method": status["requested_method"],
        "served_method": status["served_method"],
        "degraded": status["degraded"],
        "key": artifact["key"],
        "stats": artifact["stats"],
    }
    print(json.dumps(summary, sort_keys=True))
    if args.fail_on_degrade and status["degraded"]:
        return 3
    return 0


def _measure_machine_spec(args: argparse.Namespace) -> dict | None:
    """The (canonical) machine spec a ``repro measure`` invocation names."""
    if args.machine == "dsa":
        return None
    from .sim import OooConfig

    return OooConfig(
        issue_width=args.issue_width[0] if args.issue_width else 2,
        read_ports=args.read_ports[0] if args.read_ports else 2,
        rob_size=args.rob,
        iq_size=args.iq,
        rename=not args.no_rename,
    ).to_dict()


def _cmd_measure(args: argparse.Namespace) -> int:
    """Cycle measurement on a selectable machine model.

    ``--machine dsa`` measures the in-order model; ``--machine ooo``
    sweeps issue width x read ports (repeat ``--issue-width`` /
    ``--read-ports`` for multiple points) and prints the
    penalty-survival table.  ``--out`` writes the per-program
    conflict/alignment cycle dump (canonical JSON — two dumps from
    bit-identical machines compare equal under ``cmp``), ``--record``
    folds the sweep into an ``OOO_*.json`` history record for
    ``repro bench diff``.
    """
    from .experiments import (
        ooo_record,
        ooo_sweep,
        parity_dump,
        survival_table,
        write_record,
    )
    from .experiments.ooo_sweep import SWEEP_METHODS

    ctx = _build_context(args)
    methods = tuple(args.method) if args.method else SWEEP_METHODS
    programs = tuple(args.program) if args.program else None
    where = dict(suite=args.suite, platform=args.platform, banks=args.banks)

    if args.out:
        dump = parity_dump(
            ctx, methods=methods, programs=programs,
            machine_spec=_measure_machine_spec(args), **where,
        )
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(dump)
        print(f"wrote per-program cycle dump to {args.out}")

    if args.machine == "dsa":
        rows = []
        for method in methods:
            results = ctx.results(
                args.suite, args.platform, args.banks, method,
                measure_dynamic=False, measure_cycles=True,
            )
            if programs:
                results = [r for r in results if r.program in programs]
            rows.append(
                (method, sum(r.cycles or 0.0 for r in results),
                 sum(r.conflict_cycles or 0.0 for r in results),
                 sum(r.alignment_cycles or 0.0 for r in results))
            )
        from .experiments import render_table

        print(render_table(
            f"DSA in-order cycles — {args.suite} on "
            f"{args.platform}:{args.banks}",
            ["method", "cycles", "conflict cycles", "alignment cycles"],
            rows,
        ))
        return 0

    widths = tuple(args.issue_width) if args.issue_width else (1, 2, 4)
    ports = tuple(args.read_ports) if args.read_ports else (1, 2, 4)
    sweep = ooo_sweep(
        ctx, methods=methods, widths=widths, ports=ports,
        rob_size=args.rob, iq_size=args.iq, rename=not args.no_rename,
        programs=programs, **where,
    )
    print(survival_table(sweep))
    if args.record:
        record = ooo_record(ctx, sweep, label=args.label)
        path = write_record(record, args.record, prefix="OOO")
        print(f"recorded {len(record['programs'])} sweep entries to {path}")
    return 0


def _cmd_bench_record(args: argparse.Namespace) -> int:
    """Collect a benchmark history record and write it to disk."""
    from .experiments import DEFAULT_HISTORY_DIR, collect_record, write_record

    ctx = _build_context(args)
    record = collect_record(ctx, label=args.label)
    path = write_record(record, args.out or DEFAULT_HISTORY_DIR)
    totals = record["totals"]
    print(f"recorded {len(record['programs'])} program entries to {path}")
    print(
        "  totals: "
        + "  ".join(f"{name}={totals[name]:g}" for name in sorted(totals))
    )
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    """Compare two history records; non-zero exit on regression."""
    from .experiments import RecordError, diff_records, load_record

    try:
        old = load_record(args.old)
        new = load_record(args.new)
    except RecordError as exc:
        print(f"bench diff: {exc}", file=sys.stderr)
        return 2
    report = diff_records(
        old,
        new,
        old_path=args.old,
        new_path=args.new,
        threshold_pct=args.threshold_pct,
        abs_floor=args.abs_floor,
        allow_config_mismatch=args.allow_config_mismatch,
    )
    print(report.render())
    return report.exit_code()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PresCount (CGO 2024) reproduction: regenerate tables, "
        "figures, and suites.",
    )
    parser.add_argument("--spec-scale", type=float, default=0.02,
                        help="SPECfp suite scale (default 0.02)")
    parser.add_argument("--cnn-scale", type=float, default=0.2,
                        help="CNN-KERNEL suite scale (default 0.2)")
    parser.add_argument("--idft-points", type=int, default=8,
                        help="IDFT size for the DSA suite (default 8)")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for suite runs (default: REPRO_JOBS env "
        "var, else all CPUs; 1 = serial). Results are identical at any "
        "job count.",
    )
    parser.add_argument(
        "--pass-stats", action="store_true",
        help="print per-pass timing and analysis-cache statistics to "
        "stderr after the command",
    )
    parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="record nested spans for every phase/stage/analysis and "
        "write Chrome-trace JSON (open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics", metavar="OUT.json", default=None,
        help="record pipeline metrics (spills, bank pressure, conflict "
        "cost deltas, ...) and write them as JSON; '-' renders a table "
        "to stderr instead",
    )
    parser.add_argument(
        "--explain", metavar="VREG", default=None,
        help="record Algorithm 1 decisions and print the decision "
        "history of one virtual register (e.g. v5) to stderr",
    )
    parser.add_argument(
        "--profile", metavar="OUT.json", default=None,
        help="attribute every conflict stall cycle to its (function, "
        "loop nest, block, instruction, bank pair) site and write the "
        "profile as JSON; '-' renders a top-N hotspot table to stderr, "
        "a .folded suffix writes flamegraph-compatible collapsed stacks",
    )
    parser.add_argument(
        "--selfcheck", action="store_true",
        help="allocate a canned kernel with the flat core on and off and "
        "hard-fail unless the artifacts are byte-identical; runs before "
        "the subcommand (bare `repro --selfcheck` runs it alone)",
    )
    parser.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="arm a seeded fault-injection plan (chaos testing; see "
        "docs/RESILIENCE.md). Also settable via the REPRO_FAULTS "
        "environment variable",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate one table (I..VII)")
    p_table.add_argument("name")
    p_table.set_defaults(func=_cmd_table)

    p_figure = sub.add_parser("figure", help="regenerate one figure (1/10/11)")
    p_figure.add_argument("name")
    p_figure.set_defaults(func=_cmd_figure)

    p_all = sub.add_parser("all", help="regenerate every table and figure")
    p_all.set_defaults(func=_cmd_all)

    p_compare = sub.add_parser(
        "compare", help="paper-vs-measured shape comparison"
    )
    p_compare.set_defaults(func=_cmd_compare)

    p_suite = sub.add_parser("suite", help="describe a generated suite")
    p_suite.add_argument("name", choices=["SPECfp", "CNN-KERNEL", "DSA-OP"])
    p_suite.set_defaults(func=_cmd_suite)

    p_alloc = sub.add_parser("allocate", help="allocate a demo kernel")
    p_alloc.add_argument("--method", choices=["non", "bcr", "bpc"], default="bpc")
    p_alloc.add_argument("--banks", type=int, default=2)
    p_alloc.add_argument("--registers", type=int, default=32)
    p_alloc.add_argument("--trip-count", type=int, default=16)
    p_alloc.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the result artifact (canonical JSON, same "
        "schema and content address the service cache stores)",
    )
    p_alloc.add_argument(
        "--ir", default=None, metavar="FILE",
        help="allocate this IR text instead of the demo kernel ('-' "
        "reads stdin); multi-function text builds a module artifact",
    )
    p_alloc.add_argument(
        "--incremental", action="store_true",
        help="module IR only: reuse per-function fragments from the "
        "store, re-running the pipeline only for changed functions",
    )
    p_alloc.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist the fragment store under DIR so --incremental "
        "reuse works across invocations (default: in-memory, one run)",
    )
    p_alloc.set_defaults(func=_cmd_allocate)

    p_verify = sub.add_parser(
        "verify",
        help="independently re-check an allocation artifact "
        "(canonical bytes, schema/key, structural, bank legality, "
        "semantics)",
    )
    p_verify.add_argument("artifact", metavar="ARTIFACT.json")
    p_verify.add_argument(
        "--ir", default=None, metavar="FILE",
        help="the originally submitted IR ('-' reads stdin); enables "
        "the content-address recomputation and the interpreter-backed "
        "semantic equivalence check",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_serve = sub.add_parser(
        "serve", help="run the allocation service (HTTP/JSON)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8377,
        help="listen port (0 binds a free port; default 8377)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="process-pool workers per batch (0 = execute inline on the "
        "dispatcher thread; default 0)",
    )
    p_serve.add_argument(
        "--batch-size", type=int, default=8,
        help="max queued jobs drained into one dispatch batch",
    )
    p_serve.add_argument(
        "--max-retries", type=int, default=1,
        help="retries when a worker crashes or a job raises",
    )
    p_serve.add_argument(
        "--retry-backoff-ms", type=float, default=50.0,
        help="base backoff between retry rounds",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the artifact cache content-addressed under DIR "
        "(default: memory only)",
    )
    p_serve.add_argument(
        "--verify", choices=["strict", "cached-only", "off"],
        default="cached-only",
        help="independent artifact verification: 'strict' re-checks "
        "every artifact before it is cached or served, 'cached-only' "
        "re-checks on-disk cache loads (default), 'off' disables",
    )
    p_serve.add_argument(
        "--job-retries", type=int, default=2,
        help="whole-job retry budget before a failing job dead-letters "
        "(default 2)",
    )
    p_serve.add_argument(
        "--retention", type=int, default=1024, metavar="N",
        help="finished jobs kept pollable before oldest-first eviction "
        "(default 1024)",
    )
    p_serve.add_argument(
        "--max-queue-depth", type=int, default=1024,
        help="queue depth at which submits are shed with 503 + "
        "Retry-After (default 1024)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="boot N worker processes behind a consistent-hash shard "
        "router (0 = single-process service; each worker owns the "
        "cache shard DIR/shard-sK, see docs/SCALING.md)",
    )
    p_serve.add_argument(
        "--journal", default=None, metavar="DIR",
        help="write-ahead job journal under DIR: every accepted job is "
        "journaled before the submit returns, and on restart "
        "accepted-but-unfinished jobs are replayed (sharded mode "
        "splits DIR/shard-sK per worker; see docs/RESILIENCE.md)",
    )
    p_serve.add_argument(
        "--no-telemetry", action="store_true",
        help="disable fleet telemetry (request spans and /v1/trace "
        "payloads; /v1/metrics and /v1/stats stay available)",
    )
    p_serve.add_argument(
        "--events", default=None, metavar="OUT.jsonl",
        help="append one structured JSONL event per finished request "
        "(trace id, tiers, stage timings, cache disposition, retries); "
        "shard workers append to the same file",
    )
    p_serve.add_argument(
        "-v", "--verbose", action="store_true",
        help="log every HTTP request to stderr",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="seeded open-loop traffic harness (arrival ramps, Zipf "
        "popularity, deadline mixes) reporting p50/p99/p999 + goodput",
    )
    p_loadgen.add_argument(
        "--server", default=None, metavar="URL",
        help="target a running service over HTTP (single-process or "
        "sharded; default: an in-process shard fleet)",
    )
    p_loadgen.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="in-process fleet size when no --server is given (default 3)",
    )
    p_loadgen.add_argument(
        "--requests", type=int, default=60,
        help="total arrivals scheduled (exact; default 60)",
    )
    p_loadgen.add_argument(
        "--pool", type=int, default=12,
        help="distinct kernels in the popularity pool (default 12)",
    )
    p_loadgen.add_argument(
        "--zipf-s", type=float, default=1.1,
        help="Zipf skew s over the kernel pool; larger = hotter head "
        "(default 1.1)",
    )
    p_loadgen.add_argument(
        "--phase", action="append", metavar="DUR:RPS", default=None,
        help="arrival ramp phase, repeatable in order "
        "(default 0.5:80 then 0.5:240)",
    )
    p_loadgen.add_argument(
        "--deadline-frac", type=float, default=0.0,
        help="fraction of requests carrying a deadline (default 0)",
    )
    p_loadgen.add_argument(
        "--deadline-ms", action="append", type=float, default=None,
        metavar="MS",
        help="deadline menu entry for that fraction, repeatable "
        "(default 5 20 100)",
    )
    p_loadgen.add_argument(
        "--method", choices=["non", "bcr", "bpc"], default="bpc"
    )
    p_loadgen.add_argument("--registers", type=int, default=16)
    p_loadgen.add_argument("--banks", type=int, default=2)
    p_loadgen.add_argument(
        "--sample", type=int, default=4,
        help="distinct kernels whose responses are checked bit-identical "
        "against a direct single-process run (default 4)",
    )
    p_loadgen.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request completion timeout in seconds (default 30)",
    )
    p_loadgen.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache shard base directory for the in-process fleet "
        "(default: memory only)",
    )
    p_loadgen.add_argument(
        "--journal", default=None, metavar="DIR",
        help="write-ahead job journal base directory for the in-process "
        "fleet (DIR/shard-sK per shard; see docs/RESILIENCE.md)",
    )
    p_loadgen.add_argument(
        "--rolling-restart", action="store_true",
        help="drain→restart→rejoin every in-process shard one at a time "
        "halfway through the run; the report gains a rolling_restart "
        "block and goodput must not drop (in-process fleet only)",
    )
    p_loadgen.add_argument(
        "--record", default=None, metavar="DIR",
        help="write a LOADGEN_<timestamp>.json history record under DIR "
        "(BENCH schema; gate with `repro bench diff`)",
    )
    p_loadgen.add_argument(
        "--label", default="",
        help="free-form label stored in the record",
    )
    p_loadgen.add_argument(
        "--no-telemetry", action="store_true",
        help="do not attach trace contexts to generated requests (the "
        "report then carries no trace_ids)",
    )
    p_loadgen.set_defaults(func=_cmd_loadgen)

    p_trace = sub.add_parser(
        "trace",
        help="distributed traces from a telemetry-enabled service",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_fetch = trace_sub.add_parser(
        "fetch",
        help="GET /v1/trace/<trace_id> and write the merged spans as "
        "Chrome-trace JSON (frontend, shards, and workers in one view)",
    )
    p_trace_fetch.add_argument("trace_id", metavar="TRACE_ID")
    p_trace_fetch.add_argument(
        "--server", default="http://127.0.0.1:8377", metavar="URL"
    )
    p_trace_fetch.add_argument(
        "--out", "-o", default=None, metavar="FILE",
        help="output path (default trace-<trace_id>.json)",
    )
    p_trace_fetch.add_argument("--timeout", type=float, default=10.0)
    p_trace_fetch.set_defaults(func=_cmd_trace_fetch)

    p_top = sub.add_parser(
        "top",
        help="live terminal view of /v1/stats: counters, SLO error "
        "budget, per-shard routing/uptime/breaker state",
    )
    p_top.add_argument(
        "--server", default="http://127.0.0.1:8377", metavar="URL"
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh interval in seconds (default 2)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing; for "
        "scripts and CI)",
    )
    p_top.add_argument("--timeout", type=float, default=10.0)
    p_top.set_defaults(func=_cmd_top)

    p_req = sub.add_parser(
        "request", help="submit one request to a running service"
    )
    p_req.add_argument(
        "--server", default="http://127.0.0.1:8377", metavar="URL"
    )
    p_req.add_argument(
        "--ir", default=None, metavar="FILE",
        help="IR text to allocate ('-' reads stdin; default: the demo "
        "kernel `repro allocate` uses)",
    )
    p_req.add_argument("--method", choices=["non", "bcr", "bpc"], default="bpc")
    p_req.add_argument("--banks", type=int, default=2)
    p_req.add_argument("--registers", type=int, default=32)
    p_req.add_argument("--subgroups", type=int, default=0)
    p_req.add_argument("--trip-count", type=int, default=16)
    p_req.add_argument(
        "--deadline-ms", type=float, default=None,
        help="deadline budget; an exhausted budget degrades down the "
        "bpc→bcr→non ladder instead of timing out",
    )
    p_req.add_argument("--timeout", type=float, default=30.0)
    p_req.add_argument(
        "--retries", type=int, default=2,
        help="client retries on transient failures (timeouts, "
        "connection errors, 429/503 shed responses; default 2)",
    )
    p_req.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the artifact bytes verbatim",
    )
    p_req.add_argument(
        "--fail-on-degrade", action="store_true",
        help="exit 3 when the served tier is below the requested method",
    )
    p_req.add_argument(
        "--job-id", default=None, metavar="JOB",
        help="query the status of a prior (possibly pre-restart) job "
        "instead of submitting; with --journal on the server the id "
        "survives crashes (exit 0 done, 1 otherwise; --out fetches "
        "the artifact bytes when done)",
    )
    p_req.set_defaults(func=_cmd_request)

    p_measure = sub.add_parser(
        "measure",
        help="cycle measurement on a selectable machine model (in-order "
        "dsa or out-of-order ooo width/port sweep)",
    )
    p_measure.add_argument(
        "--machine", choices=["dsa", "ooo"], default="dsa",
        help="cycle model: the in-order DSA VLIW machine or the "
        "out-of-order pipeline (default dsa)",
    )
    p_measure.add_argument(
        "--suite", choices=["SPECfp", "CNN-KERNEL", "DSA-OP"],
        default="DSA-OP", help="workload suite (default DSA-OP)",
    )
    p_measure.add_argument(
        "--platform", choices=["rv1", "rv2", "dsa"], default="dsa",
        help="register-file platform (default dsa)",
    )
    p_measure.add_argument(
        "--banks", type=int, default=0,
        help="bank count within the platform (default 0 = the DSA 2x4 "
        "bank-subgroup file)",
    )
    p_measure.add_argument(
        "--method", action="append", choices=["non", "bcr", "bpc"],
        default=None, metavar="METHOD",
        help="allocation method(s) to compare (repeatable; default all)",
    )
    p_measure.add_argument(
        "--program", action="append", default=None, metavar="NAME",
        help="restrict to named suite program(s) (repeatable)",
    )
    p_measure.add_argument(
        "--issue-width", action="append", type=int, default=None,
        metavar="N",
        help="ooo sweep: instructions issued per cycle (repeatable; "
        "default 1 2 4)",
    )
    p_measure.add_argument(
        "--read-ports", action="append", type=int, default=None,
        metavar="N",
        help="ooo sweep: register-file read ports per bank (repeatable; "
        "default 1 2 4)",
    )
    p_measure.add_argument(
        "--rob", type=int, default=32,
        help="ooo: reorder-buffer entries (default 32)",
    )
    p_measure.add_argument(
        "--iq", type=int, default=16,
        help="ooo: issue-queue entries (default 16)",
    )
    p_measure.add_argument(
        "--no-rename", action="store_true",
        help="ooo: disable register renaming (scoreboard hazards; the "
        "degenerate parity configuration is --issue-width 1 "
        "--read-ports 1 --no-rename)",
    )
    p_measure.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the per-program conflict/alignment cycle dump as "
        "canonical JSON (bit-identical machines produce byte-identical "
        "dumps — CI compares them with cmp)",
    )
    p_measure.add_argument(
        "--record", default=None, metavar="DIR",
        help="ooo: write the sweep as an OOO_<timestamp>.json history "
        "record under DIR for `repro bench diff`",
    )
    p_measure.add_argument(
        "--label", default="", help="free-form label stored in the record"
    )
    p_measure.set_defaults(func=_cmd_measure)

    p_bench = sub.add_parser(
        "bench", help="benchmark history: record runs, diff them"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_record = bench_sub.add_parser(
        "record",
        help="run the canonical combination matrix and write a "
        "BENCH_<timestamp>.json history record",
    )
    p_record.add_argument(
        "--label", default="", help="free-form label stored in the record"
    )
    p_record.add_argument(
        "--out", default=None, metavar="DIR",
        help="history directory (default benchmarks/results/history/)",
    )
    p_record.set_defaults(func=_cmd_bench_record)
    p_diff = bench_sub.add_parser(
        "diff",
        help="compare two history records; exit 1 on regression, 2 when "
        "the records are not comparable",
    )
    p_diff.add_argument("old")
    p_diff.add_argument("new")
    p_diff.add_argument(
        "--threshold-pct", type=float, default=5.0,
        help="relative delta that counts as a regression (default 5%%)",
    )
    p_diff.add_argument(
        "--abs-floor", type=float, default=1.0,
        help="ignore absolute deltas below this floor (default 1)",
    )
    p_diff.add_argument(
        "--allow-config-mismatch", action="store_true",
        help="diff records with different config fingerprints anyway",
    )
    p_diff.set_defaults(func=_cmd_bench_diff)
    return parser


def _normalize_vreg(name: str) -> str:
    """Accept ``v5``, ``%v5``, or ``5`` for ``--explain``."""
    name = name.strip()
    if name.isdigit():
        name = f"v{name}"
    if not name.startswith("%"):
        name = f"%{name}"
    return name


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from . import obs

    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv == ["--selfcheck"]:
        # Bare `repro --selfcheck`: run the check without a subcommand.
        return _cmd_selfcheck()
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.selfcheck:
        code = _cmd_selfcheck()
        if code:
            return code
    if args.pass_stats:
        from .passes.instrument import GLOBAL

        GLOBAL.enable()
    if args.trace:
        obs.TRACER.enable()
    if args.metrics:
        obs.METRICS.enable()
    if args.explain:
        obs.AUDIT.enable()
    if args.profile:
        obs.PROFILE.enable()
    if args.faults:
        from .resilience import FAULTS, load_plan

        FAULTS.arm(load_plan(args.faults))
        # Exported so process-pool workers re-arm the same plan on
        # their side of the fork/spawn.
        os.environ["REPRO_FAULTS"] = args.faults
    try:
        from .experiments import PartialSuiteError

        try:
            return args.func(args)
        except PartialSuiteError as exc:
            # A worker crash no longer aborts the run silently: report
            # what completed and exit non-zero.
            print(exc.render(), file=sys.stderr)
            return 1
    finally:
        if args.pass_stats:
            from .passes.instrument import GLOBAL

            print(GLOBAL.render(), file=sys.stderr)
        if args.trace:
            obs.TRACER.write_chrome_trace(args.trace)
            print(
                f"wrote {len(obs.TRACER.spans)} spans to {args.trace} "
                "(open in chrome://tracing or https://ui.perfetto.dev)",
                file=sys.stderr,
            )
        if args.metrics:
            if args.metrics == "-":
                print(obs.METRICS.render(), file=sys.stderr)
            else:
                obs.METRICS.write_json(args.metrics)
                print(f"wrote metrics to {args.metrics}", file=sys.stderr)
        if args.explain:
            print(
                obs.AUDIT.explain(_normalize_vreg(args.explain)),
                file=sys.stderr,
            )
        if args.profile:
            if args.profile == "-":
                print(obs.PROFILE.render(), file=sys.stderr)
            elif args.profile.endswith(".folded"):
                with open(args.profile, "w", encoding="utf-8") as fh:
                    fh.write(obs.PROFILE.folded_stacks() + "\n")
                print(
                    f"wrote {len(obs.PROFILE)} sites to {args.profile} "
                    "(collapsed stacks; feed to flamegraph.pl or "
                    "speedscope)",
                    file=sys.stderr,
                )
            else:
                obs.PROFILE.write_json(args.profile)
                print(
                    f"wrote {len(obs.PROFILE)} hotspot sites to "
                    f"{args.profile}",
                    file=sys.stderr,
                )


if __name__ == "__main__":
    sys.exit(main())

"""Legacy setup shim: the offline environment lacks the `wheel` package, so
PEP 517 editable installs (which require bdist_wheel) are unavailable.
`pip install -e . --no-build-isolation --no-use-pep517` uses this file."""
from setuptools import setup

setup()
